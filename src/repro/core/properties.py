"""Companion graph-property sketches: bipartiteness, k-connectivity, MST.

Section 1.2 of the paper summarises its companion work [4] (the source
of Theorem 2.3): sketch-based tests for connectivity, k-connectivity
and bipartiteness, and minimum-spanning-tree computation in dynamic
streams.  This paper *builds on* those primitives, so a complete
library ships them; each is a thin, well-tested composition of the
substrates already implemented here.

* :class:`BipartitenessSketch` — the doubled-graph reduction: replace
  every edge ``(u, v)`` by ``(u, v')`` and ``(u', v)`` on a universe of
  ``2n`` nodes.  A connected component of ``G`` stays one component in
  the doubled graph iff it contains an odd cycle; hence ``G`` is
  bipartite iff ``cc(G'') = 2 · cc(G)``.
* :func:`is_k_connected_sketch` — Theorem 2.3 read directly: the
  ``k-EDGECONNECT`` witness preserves all cuts up to ``k``, so
  Stoer–Wagner on the witness answers k-edge-connectivity.
* :class:`MSTWeightSketch` — the component-counting identity
  ``MSF(G) = Σ_{i=0}^{W-1} cc_i − W · cc_W`` over weight thresholds
  (Kruskal's telescoping), with one spanning-forest sketch per
  threshold; a geometric ``(1+ε)`` threshold ladder trades sketches for
  approximation exactly as in the streaming-MST literature.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import StreamError, incompatible
from ..graphs import global_min_cut_value
from ..hashing import HashSource
from ..sketch import ArenaBacked
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from .edge_connect import EdgeConnectivitySketch
from .forest import SpanningForestSketch

__all__ = [
    "BipartitenessSketch",
    "MSTWeightSketch",
    "is_k_connected_sketch",
]


class BipartitenessSketch(ArenaBacked):
    """Single-pass dynamic-stream bipartiteness test.

    Maintains a spanning-forest sketch of ``G`` (n nodes) and of the
    doubled graph ``G''`` (2n nodes, ``v' = v + n``).  Linear, hence
    deletion-proof and mergeable like every sketch here.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"properties"})

    def __init__(self, n: int, source: HashSource | None = None,
                 rounds: int | None = None):
        if source is None:
            source = HashSource(0xB1B)
        self.n = n
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        #: The constructor's ``rounds`` argument verbatim (``None`` means
        #: each forest picks its own default — which differs between the
        #: base and doubled universes, so the raw value must be kept for
        #: faithful reconstruction).
        self.ctor_rounds = rounds
        self.base = SpanningForestSketch(n, source.derive(1), rounds=rounds)
        self.doubled = SpanningForestSketch(
            2 * n, source.derive(2), rounds=rounds
        )

    def update(self, update: EdgeUpdate) -> None:
        """Apply one edge update to both sketches."""
        self.base.update(update)
        u, v, d = update.lo, update.hi, update.delta
        self.doubled.update(EdgeUpdate(u, v + self.n, d))
        self.doubled.update(EdgeUpdate(v, u + self.n, d))

    def consume(self, stream: DynamicGraphStream) -> "BipartitenessSketch":
        """Feed an entire stream (single pass)."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "BipartitenessSketch":
        """Ingest one columnar batch into the base and doubled sketches.

        The doubled graph's edges ``(u, v + n)`` and ``(v, u + n)`` stay
        canonically oriented because ``u, v < n <= x + n``.
        """
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        self.base.consume_batch(batch)
        self.doubled.update_edges(
            np.concatenate([batch.lo, batch.hi]),
            np.concatenate([batch.hi + self.n, batch.lo + self.n]),
            np.concatenate([batch.delta, batch.delta]),
        )
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return self.base._cell_banks() + self.doubled._cell_banks()

    def _require_combinable(self, other: "BipartitenessSketch", op: str = "merge") -> None:
        if other.n != self.n:
            raise incompatible("BipartitenessSketch", "n", self.n, other.n, op=op)
        self.base._require_combinable(other.base, op=op)
        self.doubled._require_combinable(other.doubled, op=op)

    def merge(self, other: "BipartitenessSketch") -> None:
        """Merge an identically-seeded sketch."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "BipartitenessSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    def is_bipartite(self) -> bool:
        """Whether the sketched graph is bipartite (w.h.p. correct).

        ``cc(G'') = 2·cc(G)`` iff no component of G has an odd cycle.
        Isolated vertices contribute 1 and 2 components respectively,
        keeping the identity exact.
        """
        cc_base = len(self.base.connected_components())
        cc_doubled = len(self.doubled.connected_components())
        return cc_doubled == 2 * cc_base

    def memory_cells(self) -> int:
        """Total 1-sparse cells (space accounting)."""
        return self.base.memory_cells() + self.doubled.memory_cells()


def is_k_connected_sketch(
    n: int,
    k: int,
    stream: DynamicGraphStream,
    source: HashSource | None = None,
) -> bool:
    """Single-pass k-edge-connectivity test (Theorem 2.3 applied).

    Builds the ``k-EDGECONNECT`` witness and checks its global minimum
    cut: the witness preserves every cut value up to ``k`` exactly, so
    ``λ(H) >= k ⇔ λ(G) >= k`` (w.h.p.).
    """
    if source is None:
        source = HashSource(0xC0C)
    sketch = EdgeConnectivitySketch(n, k, source).consume_batch(stream.as_batch())
    witness = sketch.witness()
    if witness.num_edges() == 0:
        return False
    return global_min_cut_value(witness) >= k


class MSTWeightSketch(ArenaBacked):
    """Minimum-spanning-forest weight from threshold connectivity sketches.

    Parameters
    ----------
    n:
        Node universe size.
    max_weight:
        Upper bound ``W`` on edge weights (weights travel as atomic
        token multiplicities, as in §3.5).
    epsilon:
        0 for exact integer thresholds ``1..W`` (``W`` forest
        sketches); ``> 0`` for the geometric ladder ``(1+ε)^j``
        (``O(log_{1+ε} W)`` sketches, multiplicative ``(1+ε)``
        over-estimate bound).
    source:
        Seed source.

    Notes
    -----
    Uses the Kruskal telescoping identity: with ``cc_t`` the number of
    connected components of the subgraph of edges with weight ``≤ t``,

        ``MSF(G) = Σ_i (t_{i+1} - t_i) · (cc_{t_i} - cc_W) ``

    which for unit steps reduces to ``Σ_{i=0}^{W-1} cc_i − W·cc_W``.
    Unreachable components are never charged (we subtract ``cc_W``), so
    the estimator returns the minimum spanning *forest* weight on
    disconnected graphs.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"properties"})

    def __init__(
        self,
        n: int,
        max_weight: int,
        epsilon: float = 0.0,
        source: HashSource | None = None,
        rounds: int | None = None,
    ):
        if max_weight < 1:
            raise ValueError(f"max_weight must be >= 1, got {max_weight}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if source is None:
            source = HashSource(0x357)
        self.n = n
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.ctor_rounds = rounds
        self.max_weight = max_weight
        self.epsilon = epsilon
        if epsilon == 0.0:
            self.thresholds = list(range(1, max_weight + 1))
        else:
            self.thresholds = []
            t = 1.0
            while t < max_weight:
                self.thresholds.append(int(math.floor(t)))
                t *= 1.0 + epsilon
            self.thresholds.append(max_weight)
            self.thresholds = sorted(set(self.thresholds))
        self.sketches = [
            SpanningForestSketch(n, source.derive(0x7E, i), rounds=rounds)
            for i in range(len(self.thresholds))
        ]

    def update(self, update: EdgeUpdate) -> None:
        """Route a weight-atomic token to every threshold ≥ its weight."""
        w = abs(update.delta)
        if w > self.max_weight:
            raise StreamError(
                f"token weight {w} exceeds max_weight {self.max_weight}"
            )
        sign = 1 if update.delta > 0 else -1
        presence = EdgeUpdate(update.u, update.v, sign)
        for threshold, sketch in zip(self.thresholds, self.sketches):
            if w <= threshold:
                sketch.update(presence)

    def consume(self, stream: DynamicGraphStream) -> "MSTWeightSketch":
        """Feed an entire stream (single pass)."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "MSTWeightSketch":
        """Ingest one columnar batch, routed to every qualifying threshold."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        if len(batch) == 0:
            return self
        w = np.abs(batch.delta)
        over = w > self.max_weight
        if over.any():
            raise StreamError(
                f"token weight {int(w[over][0])} exceeds max_weight "
                f"{self.max_weight}"
            )
        sign = np.where(batch.delta > 0, 1, -1).astype(np.int64)
        for threshold, sketch in zip(self.thresholds, self.sketches):
            mask = w <= threshold
            if mask.any():
                sketch.update_edges(
                    batch.lo[mask], batch.hi[mask], sign[mask],
                    items=batch.ranks[mask],
                )
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [b for s in self.sketches for b in s._cell_banks()]

    def _require_combinable(self, other: "MSTWeightSketch", op: str = "merge") -> None:
        for field in ("n", "thresholds"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "MSTWeightSketch", field, getattr(self, field),
                    getattr(other, field), op=op)
        for mine, theirs in zip(self.sketches, other.sketches):
            mine._require_combinable(theirs, op=op)

    def merge(self, other: "MSTWeightSketch") -> None:
        """Merge an identically-seeded sketch."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "MSTWeightSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    def component_counts(self) -> list[int]:
        """``cc_t`` per threshold (diagnostics)."""
        return [len(s.connected_components()) for s in self.sketches]

    def estimate(self) -> float:
        """Minimum-spanning-forest weight estimate.

        Exact (w.h.p.) for ``epsilon == 0``; a ``≤ (1+ε)`` overestimate
        of the true MSF weight for the geometric ladder.
        """
        counts = self.component_counts()
        cc_top = counts[-1]
        # Abel-transformed Kruskal telescoping:
        #   MSF = Σ_i (t_i − t_{i−1}) · (cc_{t_{i−1}} − cc_W),  t_0 = 0.
        total = 0.0
        prev_t = 0
        prev_cc = self.n  # cc at threshold 0 (no edges)
        for t, cc in zip(self.thresholds, counts):
            total += (t - prev_t) * (prev_cc - cc_top)
            prev_t, prev_cc = t, cc
        return total

    def memory_cells(self) -> int:
        """Total 1-sparse cells (space accounting)."""
        return sum(s.memory_cells() for s in self.sketches)
