"""``RECURSECONNECT`` — Section 5.1; Theorem 5.1 and Lemma 5.1.

A ``(k^{log₂5} - 1)``-spanner from only ``log k`` adaptive batches (plus
a final read-out), with ``Õ(n^{1+1/k})`` measurements — trading stretch
for a dramatic cut in adaptivity compared with the Baswana–Sen
emulation.

The idea (paper, §5.1): growing BFS-like regions one hop per pass is
slow; instead each phase *contracts* the graph aggressively so that the
supernode count falls doubly exponentially, maintaining the invariant
``|G̃_i| <= n^{1 - (2^i - 1)/k}``:

1. every supernode samples ``≈ n^{2^i/k}`` distinct neighbouring
   supernodes via bucketed ℓ₀ samplers over the original edge domain
   (witness edges come for free);
2. supernodes with fewer sampled neighbours than the degree threshold
   are *low degree*: all their witness edges join the spanner and they
   retire;
3. among high-degree supernodes a set of cluster centers, pairwise
   ``>= 3`` hops apart in the sampled graph ``H_i``, is chosen greedily
   (the approximate-k-center device of the paper); each high-degree
   supernode lies within 2 hops of a center, and the 1–2 witness edges
   of its assignment path join the spanner;
4. each cluster collapses into one supernode of ``G̃_{i+1}``.

After ``≈ log₂ k`` phases at most ``√n`` supernodes remain; the final
batch keeps one ℓ₀ sampler per *pair* of supernodes — ``O(n)`` space —
and adds one witness edge per connected pair.

The collapsed-set diameter ``a_i`` obeys ``a_{i+1} <= 5 a_i + 4`` with
``a_1 <= 4`` (Lemma 5.1), giving the ``k^{log₂5} - 1`` stretch bound.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from ..errors import SamplerFailed
from ..graphs import Graph
from ..hashing import HashSource
from ..sketch import L0SamplerBank
from ..streams import DynamicGraphStream
from ..util import pair_count, pair_unrank
from .spanner_bs import SpannerBuildReport

__all__ = ["RecurseConnectSpanner", "recurse_connect_stretch_bound"]


def recurse_connect_stretch_bound(k: int) -> float:
    """The Theorem 5.1 stretch bound ``k^{log₂ 5} - 1``."""
    return k ** math.log2(5.0) - 1.0


class RecurseConnectSpanner:
    """log(k)-adaptive spanner via recursive contraction (Theorem 5.1).

    Parameters
    ----------
    n:
        Node universe size.
    k:
        Trade-off parameter; stretch bound ``k^{log₂5} - 1`` with
        ``Õ(n^{1+1/k})`` measurements over ``ceil(log₂ k) + 1`` batches.
    source:
        Seed source.
    c_deg:
        Scale for the per-phase degree threshold ``n^{2^i/k}``.
    c_buckets:
        Buckets per supernode as a multiple of the degree threshold
        (controls the probability every neighbour of a low-degree
        supernode is recovered).
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"spanner-distance"})

    def __init__(
        self,
        n: int,
        k: int,
        source: HashSource | None = None,
        c_deg: float = 1.0,
        c_buckets: float = 4.0,
    ):
        if k < 2:
            raise ValueError(f"parameter k must be >= 2, got {k}")
        if source is None:
            source = HashSource(0x9C)
        self.n = n
        self.k = k
        self.source = source
        self.c_deg = c_deg
        self.c_buckets = c_buckets
        self.max_phases = max(1, math.ceil(math.log2(k)))
        #: Supernode-count trajectory across phases (E7 reports it).
        self.contraction_trajectory: list[int] = []

    def build(self, stream: DynamicGraphStream) -> SpannerBuildReport:
        """Run the contraction phases plus the final pair read-out."""
        if stream.n != self.n:
            raise ValueError("stream and spanner node universes differ")
        spanner = Graph(self.n)
        memory_cells = 0
        batches = 0
        # phi[v] = current supernode of vertex v, or None once retired.
        phi: list[int | None] = list(range(self.n))
        alive: list[int] = list(range(self.n))
        self.contraction_trajectory = [len(alive)]

        for phase in range(self.max_phases):
            if len(alive) <= max(2, int(math.isqrt(self.n))):
                break
            batches += 1
            degree_threshold = max(
                2, int(math.ceil(self.c_deg * self.n ** (2**phase / self.k)))
            )
            buckets = max(2, int(math.ceil(self.c_buckets * degree_threshold)))
            phi, alive, cells = self._contract_phase(
                stream, spanner, phi, alive, degree_threshold, buckets, phase
            )
            memory_cells += cells
            self.contraction_trajectory.append(len(alive))

        batches += 1
        memory_cells += self._final_pairs_batch(stream, spanner, phi, alive)
        return SpannerBuildReport(
            spanner=spanner,
            batches=batches,
            stretch_bound=recurse_connect_stretch_bound(self.k),
            memory_cells=memory_cells,
            edges=spanner.num_edges(),
        )

    # -- one contraction phase ----------------------------------------------------

    def _contract_phase(
        self,
        stream: DynamicGraphStream,
        spanner: Graph,
        phi: list[int | None],
        alive: list[int],
        degree_threshold: int,
        buckets: int,
        phase: int,
    ) -> tuple[list[int | None], list[int], int]:
        """Sample neighbourhoods, retire low degree, cluster, collapse."""
        batch_source = self.source.derive(0x9C, phase)
        bank = L0SamplerBank(
            families=1,
            samplers=len(alive) * buckets,
            domain=pair_count(self.n),
            source=batch_source.derive(1),
            rows=2,
            buckets=4,
        )
        bucket_hash = batch_source.derive(2)

        # Replay the stream routed by the *current* contraction map,
        # evaluated columnar: map endpoints to supernodes, drop retired
        # and intra-supernode tokens, and bucket-hash whole arrays.
        batch = stream.as_batch()
        phi_arr = np.fromiter(
            (p if p is not None else -1 for p in phi), dtype=np.int64, count=self.n
        )
        index_arr = np.full(self.n, -1, dtype=np.int64)
        index_arr[np.asarray(alive, dtype=np.int64)] = np.arange(
            len(alive), dtype=np.int64
        )
        pa = phi_arr[batch.lo]
        pb = phi_arr[batch.hi]
        mask = (pa >= 0) & (pb >= 0) & (pa != pb)
        if mask.any():
            pa, pb = pa[mask], pb[mask]
            item_rows = batch.ranks[mask]
            delta_rows = batch.delta[mask]
            rows = []
            for mine, other in ((pa, pb), (pb, pa)):
                b = np.asarray(bucket_hash.bucket(other, buckets), dtype=np.int64)
                rows.append(index_arr[mine] * buckets + b)
            bank.update(
                np.zeros(2 * item_rows.size, dtype=np.int64),
                np.concatenate(rows),
                np.concatenate([item_rows, item_rows]),
                np.concatenate([delta_rows, delta_rows]),
            )

        # Recover sampled neighbourhoods: H_i and witness edges.
        neighbors: dict[int, dict[int, tuple[int, int]]] = {p: {} for p in alive}
        for p in alive:
            base = int(index_arr[p]) * buckets
            for b in range(buckets):
                try:
                    item, _value = bank.sample(0, base + b)
                except SamplerFailed:
                    continue
                u, v = pair_unrank(item, self.n)
                pu, pv = phi[u], phi[v]
                if pu == p and pv is not None and pv != p:
                    neighbors[p].setdefault(pv, (u, v))
                elif pv == p and pu is not None and pu != p:
                    neighbors[p].setdefault(pu, (u, v))

        low = {p for p in alive if len(neighbors[p]) < degree_threshold}
        high = [p for p in alive if p not in low]

        # Low-degree supernodes: keep every witness edge, then retire.
        for p in low:
            for (u, v) in neighbors[p].values():
                spanner.add_edge(u, v, 1.0)

        # Cluster the high-degree supernodes on H_i (all alive nodes as
        # intermediate hops), centers pairwise >= 3 hops apart.
        hi_adj: dict[int, dict[int, tuple[int, int]]] = {p: {} for p in alive}
        for p in alive:
            for q, witness in neighbors[p].items():
                hi_adj[p].setdefault(q, witness)
                hi_adj[q].setdefault(p, witness)

        centers: list[int] = []
        blocked: set[int] = set()
        for p in high:
            if p in blocked:
                continue
            centers.append(p)
            blocked.add(p)
            for q, _w in self._within_two_hops(p, hi_adj):
                blocked.add(q)

        # Assign every high-degree supernode to a center within 2 hops.
        assignment: dict[int, int] = {c: c for c in centers}
        for c in centers:
            for q, path_edges in self._within_two_hops(c, hi_adj):
                if q in low or q in assignment:
                    continue
                assignment[q] = c
                for (u, v) in path_edges:
                    spanner.add_edge(u, v, 1.0)
        for p in high:
            if p not in assignment:
                # Maximality gap (sampling noise): promote to center.
                centers.append(p)
                assignment[p] = p

        # Collapse: new supernode id = center id.
        new_phi: list[int | None] = [None] * self.n
        for v in range(self.n):
            p = phi[v]
            if p is None or p in low:
                continue
            new_phi[v] = assignment[p]
        return new_phi, centers, bank.memory_cells()

    @staticmethod
    def _within_two_hops(
        start: int, hi_adj: dict[int, dict[int, tuple[int, int]]]
    ) -> list[tuple[int, list[tuple[int, int]]]]:
        """Supernodes within 2 hops of ``start`` with their witness paths."""
        out: list[tuple[int, list[tuple[int, int]]]] = []
        seen = {start}
        frontier: deque[tuple[int, list[tuple[int, int]]]] = deque([(start, [])])
        depth = {start: 0}
        while frontier:
            node, path = frontier.popleft()
            if depth[node] == 2:
                continue
            for nbr, witness in hi_adj[node].items():
                if nbr in seen:
                    continue
                seen.add(nbr)
                depth[nbr] = depth[node] + 1
                new_path = path + [witness]
                out.append((nbr, new_path))
                frontier.append((nbr, new_path))
        return out

    # -- final read-out --------------------------------------------------------------

    def _final_pairs_batch(
        self,
        stream: DynamicGraphStream,
        spanner: Graph,
        phi: list[int | None],
        alive: list[int],
    ) -> int:
        """One ℓ₀ sampler per supernode pair; add a witness edge per pair."""
        if len(alive) < 2:
            return 0
        num_pairs = len(alive) * (len(alive) - 1) // 2
        bank = L0SamplerBank(
            families=1,
            samplers=num_pairs,
            domain=pair_count(self.n),
            source=self.source.derive(0x9C, 0xF1),
            rows=2,
            buckets=4,
        )
        a = len(alive)
        batch = stream.as_batch()
        phi_arr = np.fromiter(
            (p if p is not None else -1 for p in phi), dtype=np.int64, count=self.n
        )
        index_arr = np.full(self.n, -1, dtype=np.int64)
        index_arr[np.asarray(alive, dtype=np.int64)] = np.arange(a, dtype=np.int64)
        pa = phi_arr[batch.lo]
        pb = phi_arr[batch.hi]
        mask = (pa >= 0) & (pb >= 0) & (pa != pb)
        if mask.any():
            ia = index_arr[pa[mask]]
            ib = index_arr[pb[mask]]
            lo_i = np.minimum(ia, ib)
            hi_i = np.maximum(ia, ib)
            pairs = lo_i * a - lo_i * (lo_i + 1) // 2 + (hi_i - lo_i - 1)
            bank.update(
                np.zeros(pairs.size, dtype=np.int64),
                pairs,
                batch.ranks[mask],
                batch.delta[mask],
            )
        for pair in range(num_pairs):
            try:
                item, _value = bank.sample(0, pair)
            except SamplerFailed:
                continue
            u, v = pair_unrank(item, self.n)
            spanner.add_edge(u, v, 1.0)
        return bank.memory_cells()
