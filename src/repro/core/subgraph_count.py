"""Induced-subgraph frequency sketch — Section 4; Theorem 4.1.

Estimates ``γ_H(G)`` — the fraction of *non-empty* order-k induced
subgraphs of ``G`` isomorphic to a pattern ``H`` — to additive ``ε``
with ``O(ε^{-2} log δ^{-1})`` ℓ₀ samplers.

Mechanics (Fig. 4).  The matrix ``X_G`` has a row per vertex pair of a
k-subset and a column per k-subset of ``V``; squash-encode columns into
the vector ``squash(X_G) ∈ Z^{C(n,k)}``, where column ``S`` holds
``Σ 2^{pos(pair)}`` over the present edges inside ``S``.  An ℓ₀ sample
is a uniform non-empty induced subgraph together with its full edge
bitmask; the estimator is the fraction of samples whose bitmask lies in
the isomorphism class ``A_H``.

Update cost: an edge update touches the ``C(n-2, k-2)`` columns of all
k-subsets containing both endpoints — the sketch is tiny but updates do
real work, which the paper accepts (measurements need only be
implicitly storable).  The ``k = 3`` case is fully vectorised; general
``k <= 5`` uses an explicit subset loop.

Precondition: the *final* graph must be simple (multiplicities 0/1), as
in the paper's binary matrix ``X_G``; multigraph multiplicities would
alias across rows of the encoding.  Intermediate states of the stream
may be anything (the sketch is linear).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import NotSupportedError, SamplerFailed, incompatible
from ..hashing import HashSource
from ..sketch import ArenaBacked, L0SamplerBank, pair_positions_k3, rows_for_order
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import comb
from .patterns import Pattern, encoding_class

__all__ = ["SubgraphSketch", "GammaEstimate"]


@dataclass(frozen=True, slots=True)
class GammaEstimate:
    """Outcome of a γ_H estimation.

    Attributes
    ----------
    gamma:
        Estimated fraction of non-empty order-k induced subgraphs
        isomorphic to the pattern.
    samples_used:
        Samplers that produced a valid sample.
    samples_failed:
        Samplers that returned FAIL (excluded from the estimate, as the
        δ-error budget of Theorem 2.1 allows).
    invalid_encodings:
        Samples whose value was not a valid binary-column encoding —
        non-zero only if the simple-graph precondition was violated.
    """

    gamma: float
    samples_used: int
    samples_failed: int
    invalid_encodings: int


class SubgraphSketch(ArenaBacked):
    """Linear sketch estimating induced-subgraph frequencies γ_H.

    Parameters
    ----------
    n:
        Node universe size.
    order:
        Subgraph order ``k`` (3, 4, or 5; 3 is vectorised).
    samplers:
        Number of independent ℓ₀ samplers ``s = O(ε^{-2})``; the
        additive error decays as ``1/sqrt(s)``.
    source:
        Seed source.
    rows, buckets:
        Per-sampler grid dimensions.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"subgraph-count"})

    def __init__(
        self,
        n: int,
        order: int = 3,
        samplers: int = 64,
        source: HashSource | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if source is None:
            source = HashSource(0x5B6)
        if not 3 <= order <= 5:
            raise NotSupportedError(f"subgraph order must be 3..5, got {order}")
        if samplers < 1:
            raise ValueError(f"need at least one sampler, got {samplers}")
        if n < order:
            raise ValueError(f"need n >= order, got n={n}, order={order}")
        self.n = n
        self.order = order
        self.samplers = samplers
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.matrix_rows = rows_for_order(order)
        self.domain = comb(n, order)
        self.bank = L0SamplerBank(
            families=samplers,
            samplers=1,
            domain=self.domain,
            source=source,
            rows=rows,
            buckets=buckets,
        )
        self._all_nodes = np.arange(n, dtype=np.int64)
        self._fam_ids = np.arange(samplers, dtype=np.int64)

    # -- stream side -----------------------------------------------------------

    def update(self, update: EdgeUpdate) -> None:
        """Apply one edge update to all ``C(n-2, k-2)`` affected columns."""
        cols, deltas = self._column_deltas(update.lo, update.hi, update.delta)
        s = self.samplers
        fams = np.repeat(self._fam_ids, cols.size)
        items = np.tile(cols, s)
        dl = np.tile(deltas, s)
        zeros = np.zeros(items.size, dtype=np.int64)
        self.bank.update(fams, zeros, items, dl)

    def consume(self, stream: DynamicGraphStream) -> "SubgraphSketch":
        """Feed an entire stream (single pass).

        Tokens are processed in chunks handed to the sampler bank as one
        scatter, which amortises the bank-call overhead across the chunk
        (the k = 3 fast path computes whole chunks of column expansions
        on 2-D arrays).  Bit-identical to per-token :meth:`update` calls.
        """
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "SubgraphSketch":
        """Ingest one columnar batch (chunked column expansion)."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        chunk_tokens = max(1, 200_000 // max(1, (self.n - 2) * self.samplers))
        for start in range(0, len(batch), chunk_tokens):
            end = start + chunk_tokens
            if self.order == 3:
                cols, deltas = self._column_deltas_chunk(
                    batch.lo[start:end], batch.hi[start:end],
                    batch.delta[start:end],
                )
                self._flush([cols], [deltas])
            else:
                per_token = [
                    self._column_deltas(int(lo), int(hi), int(dl))
                    for lo, hi, dl in zip(
                        batch.lo[start:end], batch.hi[start:end],
                        batch.delta[start:end],
                    )
                ]
                self._flush([c for c, _ in per_token], [d for _, d in per_token])
        return self

    def _column_deltas_chunk(
        self, lo: np.ndarray, hi: np.ndarray, delta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``k = 3`` column expansion for a chunk of tokens.

        Broadcasts the third-vertex grid to ``tokens × n``, masks out
        the two endpoints, and emits the same (column, delta) pairs as
        the per-token path, token-major.
        """
        m = lo.size
        lo2 = lo[:, None]
        hi2 = hi[:, None]
        w = np.broadcast_to(self._all_nodes, (m, self.n))
        keep = (w != lo2) & (w != hi2)
        a = np.minimum(w, lo2)  # lo < hi always, so min/max vs lo/hi suffice
        c = np.maximum(w, hi2)
        b = (w + lo2 + hi2) - a - c
        cols = a + b * (b - 1) // 2 + c * (c - 1) * (c - 2) // 6
        # Row position of {lo, hi} in the sorted triple (pair_positions_k3).
        pos = np.zeros((m, self.n), dtype=np.int64)
        pos[(w > lo2) & (w < hi2)] = 1
        pos[w < lo2] = 2
        deltas = delta[:, None] * (1 << pos)
        return cols[keep], deltas[keep]

    def _flush(
        self, cols_list: list[np.ndarray], deltas_list: list[np.ndarray]
    ) -> None:
        cols = np.concatenate(cols_list)
        deltas = np.concatenate(deltas_list)
        s = self.samplers
        fams = np.repeat(self._fam_ids, cols.size)
        items = np.tile(cols, s)
        dl = np.tile(deltas, s)
        zeros = np.zeros(items.size, dtype=np.int64)
        self.bank.update(fams, zeros, items, dl)

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [self.bank.bank]

    def _require_combinable(self, other: "SubgraphSketch", op: str = "merge") -> None:
        for field in ("n", "order", "samplers"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "SubgraphSketch", field, getattr(self, field),
                    getattr(other, field), op=op)
        self.bank._require_combinable(other.bank, op=op)

    def merge(self, other: "SubgraphSketch") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "SubgraphSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    def _column_deltas(
        self, lo: int, hi: int, delta: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Column ranks and squash deltas for one edge update."""
        if self.order == 3:
            w = self._all_nodes[(self._all_nodes != lo) & (self._all_nodes != hi)]
            a = np.minimum(np.minimum(w, lo), hi)
            c = np.maximum(np.maximum(w, lo), hi)
            b = (w + lo + hi) - a - c
            # Combinatorial number system rank of the sorted triple.
            cols = a + b * (b - 1) // 2 + c * (c - 1) * (c - 2) // 6
            pos = pair_positions_k3(lo, hi, w)
            return cols, delta * (1 << pos).astype(np.int64)
        # Generic k: explicit enumeration of the other k-2 vertices.
        others = [x for x in range(self.n) if x != lo and x != hi]
        cols = []
        deltas = []
        for rest in itertools.combinations(others, self.order - 2):
            subset = tuple(sorted((lo, hi) + rest))
            rank = 0
            for i, sNode in enumerate(subset):
                rank += comb(sNode, i + 1)
            a = subset.index(min(lo, hi))
            b = subset.index(max(lo, hi))
            pos = a * self.order - a * (a + 1) // 2 + (b - a - 1)
            cols.append(rank)
            deltas.append(delta * (1 << pos))
        return (
            np.asarray(cols, dtype=np.int64),
            np.asarray(deltas, dtype=np.int64),
        )

    # -- estimation --------------------------------------------------------------

    def raw_samples(self) -> tuple[list[int], int]:
        """Squash values of one sample per sampler, plus the FAIL count."""
        values: list[int] = []
        failed = 0
        for f in range(self.samplers):
            try:
                _, value = self.bank.sample(f, 0)
                values.append(value)
            except SamplerFailed:
                failed += 1
        return values, failed

    def estimate(self, pattern: Pattern) -> GammaEstimate:
        """Estimate ``γ_H`` for a pattern of the sketch's order."""
        if pattern.order != self.order:
            raise ValueError(
                f"pattern order {pattern.order} != sketch order {self.order}"
            )
        accepted = encoding_class(pattern)
        values, failed = self.raw_samples()
        invalid = 0
        hits = 0
        used = 0
        limit = 1 << self.matrix_rows
        for value in values:
            if not 0 < value < limit:
                invalid += 1
                continue
            used += 1
            if value in accepted:
                hits += 1
        gamma = hits / used if used else 0.0
        return GammaEstimate(
            gamma=gamma,
            samples_used=used,
            samples_failed=failed,
            invalid_encodings=invalid,
        )

    def estimate_many(self, patterns: list[Pattern]) -> dict[str, GammaEstimate]:
        """Estimate several same-order patterns from one sample draw.

        All estimates share the same samples (one sketch, many
        membership tests) — exactly how the paper's single sketch
        serves every pattern of a given order.
        """
        values, failed = self.raw_samples()
        limit = 1 << self.matrix_rows
        out: dict[str, GammaEstimate] = {}
        for pattern in patterns:
            if pattern.order != self.order:
                raise ValueError(
                    f"pattern order {pattern.order} != sketch order {self.order}"
                )
            accepted = encoding_class(pattern)
            invalid = hits = used = 0
            for value in values:
                if not 0 < value < limit:
                    invalid += 1
                    continue
                used += 1
                if value in accepted:
                    hits += 1
            out[pattern.name] = GammaEstimate(
                gamma=hits / used if used else 0.0,
                samples_used=used,
                samples_failed=failed,
                invalid_encodings=invalid,
            )
        return out

    def memory_cells(self) -> int:
        """Total 1-sparse cells (space accounting)."""
        return self.bank.memory_cells()
