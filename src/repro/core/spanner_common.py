"""Shared machinery for the adaptive spanner sketches of Section 5.

Both spanner constructions are *r-adaptive sketching schemes*
(Definition 2): measurements are performed in batches, and the
measurements of batch ``r`` may depend on the outcomes of batches
``1..r-1``.  Operationally each batch replays the stream into freshly
chosen sketches — in a multi-pass streaming deployment a batch is a
pass; in a MapReduce deployment a round (Section 1.1).

:class:`ClusterState` tracks the vertex→cluster-root assignment shared
by both algorithms, and :class:`NeighborhoodSketch` wraps the
per-vertex, per-bucket ℓ₀ sampler grid that recovers one witness edge
per adjacent cluster — the device the paper describes as "independently
partition the vertex set into subsets and use an ℓ₀-sampler for each
partition".
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplerFailed
from ..hashing import HashSource
from ..sketch import L0SamplerBank
from ..streams import DynamicGraphStream
from ..util import pair_count, pair_unrank

__all__ = ["ClusterState", "NeighborhoodSketch"]


class ClusterState:
    """Vertex → cluster-root assignment with liveness.

    ``root[v]`` is the cluster root of vertex ``v``; ``None`` marks a
    *finished* vertex (its adjacencies are already covered by spanner
    edges, so later batches ignore it).
    """

    __slots__ = ("n", "root")

    def __init__(self, n: int):
        self.n = n
        #: Cluster root per vertex; initially every vertex is its own root.
        self.root: list[int | None] = list(range(n))

    def alive(self, v: int) -> bool:
        """Whether vertex ``v`` still participates."""
        return self.root[v] is not None

    def finish(self, v: int) -> None:
        """Mark vertex ``v`` finished."""
        self.root[v] = None

    def roots(self) -> set[int]:
        """The set of live cluster roots."""
        return {r for r in self.root if r is not None}

    def root_array(self) -> np.ndarray:
        """The assignment as an ``int64`` array, ``-1`` marking finished."""
        return np.fromiter(
            (r if r is not None else -1 for r in self.root),
            dtype=np.int64,
            count=self.n,
        )

    def members(self) -> dict[int, list[int]]:
        """Live cluster members grouped by root."""
        out: dict[int, list[int]] = {}
        for v, r in enumerate(self.root):
            if r is not None:
                out.setdefault(r, []).append(v)
        return out


class NeighborhoodSketch:
    """Per-vertex bucketed ℓ₀ samplers over *cluster-routed* edges.

    For each live vertex ``u`` and bucket ``b``, an ℓ₀ sampler sketches
    the sub-vector of edges ``(u, x)`` whose *other endpoint's cluster*
    hashes to ``b`` (the clustering is fixed at batch start, so the
    routing is a legitimate linear measurement).  Querying all buckets
    of ``u`` recovers ≈ one witness edge per adjacent cluster whenever
    ``u`` is adjacent to at most ~``buckets`` clusters.

    Parameters
    ----------
    n:
        Node universe size.
    buckets:
        Cluster-hash buckets per vertex (the ``Õ(n^{1/k})`` budget).
    source:
        Seed source for this batch (fresh per batch — adaptivity).
    restrict_roots:
        If given, only edges whose other endpoint's root is in this set
        are sketched (used for "edges into sampled clusters").
    """

    def __init__(
        self,
        n: int,
        buckets: int,
        source: HashSource,
        restrict_roots: set[int] | None = None,
    ):
        self.n = n
        self.buckets = max(1, buckets)
        self._source = source
        self._cluster_hash = source.derive(0xC1)
        self.restrict_roots = restrict_roots
        self.bank = L0SamplerBank(
            families=1,
            samplers=n * self.buckets,
            domain=pair_count(n),
            source=source.derive(0xBA),
            rows=2,
            buckets=4,
        )

    def bucket_of_root(self, root: int) -> int:
        """Bucket assigned to a cluster root for this batch."""
        return int(self._cluster_hash.bucket(root, self.buckets))

    def consume(self, stream: DynamicGraphStream, state: ClusterState) -> None:
        """Replay the stream, routing each token by the *fixed* clustering.

        Pulls the stream's shared columnar batch (replays across batches
        reuse one materialisation) and evaluates the liveness/cluster
        routing for all tokens and both edge directions as array masks.
        """
        batch = stream.as_batch()
        root = state.root_array()
        allowed: np.ndarray | None = None
        if self.restrict_roots is not None:
            allowed = np.zeros(self.n, dtype=bool)
            if self.restrict_roots:
                allowed[np.fromiter(self.restrict_roots, dtype=np.int64)] = True
        samplers: list[np.ndarray] = []
        items: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        for u, x in ((batch.lo, batch.hi), (batch.hi, batch.lo)):
            rx = root[x]
            mask = (root[u] >= 0) & (rx >= 0)
            if allowed is not None:
                mask &= allowed[np.where(rx >= 0, rx, 0)]
            if not mask.any():
                continue
            rx = rx[mask]
            bucket = np.asarray(
                self._cluster_hash.bucket(rx, self.buckets), dtype=np.int64
            )
            samplers.append(u[mask] * self.buckets + bucket)
            items.append(batch.ranks[mask])
            deltas.append(batch.delta[mask])
        if samplers:
            sampler_rows = np.concatenate(samplers)
            self.bank.update(
                np.zeros(sampler_rows.size, dtype=np.int64),
                sampler_rows,
                np.concatenate(items),
                np.concatenate(deltas),
            )

    def edges_per_cluster(
        self, u: int, state: ClusterState
    ) -> dict[int, tuple[int, int]]:
        """One witness edge per adjacent cluster of ``u`` (best effort).

        Returns ``{root: (u, x)}``; clusters colliding in a bucket may
        be missed — the buckets budget controls that probability.
        """
        out: dict[int, tuple[int, int]] = {}
        for b in range(self.buckets):
            try:
                item, _value = self.bank.sample(0, u * self.buckets + b)
            except SamplerFailed:
                continue
            a, c = pair_unrank(item, self.n)
            x = c if a == u else a
            if x == u:
                continue
            rx = state.root[x]
            if rx is None:
                continue
            out.setdefault(rx, (u, x))
        return out

    def any_edge(self, u: int, state: ClusterState) -> tuple[int, int] | None:
        """Any single witness edge incident to ``u`` (first recoverable)."""
        for b in range(self.buckets):
            try:
                item, _value = self.bank.sample(0, u * self.buckets + b)
            except SamplerFailed:
                continue
            a, c = pair_unrank(item, self.n)
            x = c if a == u else a
            if x != u:
                return (u, x)
        return None

    def memory_cells(self) -> int:
        """Total 1-sparse cells held by this batch's sketch."""
        return self.bank.memory_cells()
