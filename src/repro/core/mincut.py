"""``MINCUT`` — Fig. 1; Theorems 3.2 and 3.6.

Single-pass ``(1 + ε)`` approximation of the global minimum cut in a
dynamic graph stream.  The algorithm maintains the nested subsampling
hierarchy ``G = G_0 ⊇ G_1 ⊇ ... ⊇ G_{2 log n}`` (edge ``e`` survives to
level ``i`` iff the first ``i`` coins of a consistent hash of ``e`` all
came up heads) together with a ``k-EDGECONNECT`` witness per level.
In post-processing it finds the first level whose witness min cut drops
below ``k`` and rescales: ``λ ≈ 2^j λ(H_j)``.

Why it works (Lemma 3.1, Karger): sampling each edge with probability
``p >= 6 λ^{-1} ε^{-2} log n`` preserves all cuts to ``(1 ± ε)``; for
levels ``i <= i* = log(λ ε² / (6 log n))`` the subsampled graph is such
a sample, and by level ``i*`` the minimum cut has shrunk below ``k``,
so the recursion stops in the valid range w.h.p.

Practical constants: the theory sets ``k = O(ε^{-2} log n)`` with a
pessimistic constant; :class:`MinCutSketch` exposes ``c_k`` so
experiments can sweep the constant and observe the accuracy/space
trade-off (EXPERIMENTS.md E1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import incompatible
from ..graphs import Graph, global_min_cut_value
from ..hashing import HashSource
from ..kernels import get as _get_kernel
from ..sketch import ArenaBacked
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import ceil_log2
from .edge_connect import EdgeConnectivitySketch

__all__ = ["MinCutSketch", "MinCutResult", "default_k"]

_K_LEVEL_ROUTE = _get_kernel("level_route")


def default_k(n: int, epsilon: float, c_k: float) -> int:
    """Witness connectivity parameter ``k = max(2, c_k ε^{-2} log2 n)``.

    The paper's constant (via Lemma 3.1) is 6 with natural logs and
    high-probability slack; at experiment scale ``c_k`` in the 0.5–2
    range already exhibits the theorem's behaviour.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return max(2, int(round(c_k * math.log2(max(n, 2)) / epsilon**2)))


@dataclass(frozen=True, slots=True)
class MinCutResult:
    """Outcome of the MINCUT post-processing.

    Attributes
    ----------
    value:
        The ``(1 ± ε)`` estimate ``2^j λ(H_j)``.
    stop_level:
        The level ``j`` where the recursion stopped (Fig. 1, step 3).
    witness_cut_values:
        ``λ(H_i)`` per inspected level, for diagnostics and E1's
        stop-level analysis.
    k:
        The witness parameter used.
    """

    value: float
    stop_level: int
    witness_cut_values: list[float]
    k: int


class MinCutSketch(ArenaBacked):
    """Single-pass dynamic-stream minimum cut (Fig. 1).

    Parameters
    ----------
    n:
        Node universe size.
    epsilon:
        Target relative accuracy.
    source:
        Seed source.
    c_k:
        Constant scale for the witness parameter ``k`` (see
        :func:`default_k`).
    levels:
        Subsampling depth; defaults to the paper's ``2 log n``.
    rounds, rows, buckets:
        Passed through to the underlying forest sketches.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"mincut"})

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        source: HashSource | None = None,
        c_k: float = 1.0,
        levels: int | None = None,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if source is None:
            source = HashSource(0x5EED)
        self.n = n
        self.epsilon = epsilon
        self.c_k = c_k
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.k = default_k(n, epsilon, c_k)
        self.levels = levels if levels is not None else 2 * ceil_log2(max(n, 2))
        self._level_source = source.derive(0x17)
        self.instances = [
            EdgeConnectivitySketch(
                n,
                self.k,
                source.derive(0x11, i),
                rounds=rounds,
                rows=rows,
                buckets=buckets,
            )
            for i in range(self.levels + 1)
        ]

    # -- stream side -----------------------------------------------------------

    def _edge_level(self, lo: int, hi: int) -> int:
        """Deepest subsampling level edge ``{lo, hi}`` survives to."""
        e = lo * self.n - lo * (lo + 1) // 2 + (hi - lo - 1)
        return int(self._level_source.levels(e, self.levels))

    def update(self, update: EdgeUpdate) -> None:
        """Route one edge update into levels ``0 .. level(e)``."""
        top = self._edge_level(update.lo, update.hi)
        for i in range(top + 1):
            self.instances[i].update(update)

    def consume(self, stream: DynamicGraphStream) -> "MinCutSketch":
        """Feed an entire stream (single pass).

        Pulls the stream's shared columnar batch and routes it per level
        so each ``k-EDGECONNECT`` instance receives one vectorised
        scatter instead of per-token (or per-level re-converted) work.
        """
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "MinCutSketch":
        """Ingest one columnar batch, subsampled into every level.

        The ``level_route`` kernel sorts the batch once by deepest
        surviving level, so every level's payload is a nested prefix of
        the sorted batch instead of a fresh boolean-mask copy; scatter
        results are order-independent, so the bytes are unchanged.
        """
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        top = np.asarray(
            self._level_source.levels(batch.ranks, self.levels), dtype=np.int64
        )
        order, survivors = _K_LEVEL_ROUTE(top, self.levels)
        lo = batch.lo[order]
        hi = batch.hi[order]
        delta = batch.delta[order]
        ranks = batch.ranks[order]
        for i, instance in enumerate(self.instances):
            keep = int(survivors[i])
            if keep == 0:
                break
            instance.update_edges(
                lo[:keep], hi[:keep], delta[:keep], items=ranks[:keep],
            )
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [b for inst in self.instances for b in inst._cell_banks()]

    def _require_combinable(self, other: "MinCutSketch", op: str = "merge") -> None:
        for field in ("n", "levels", "k"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "MinCutSketch", field, getattr(self, field),
                    getattr(other, field), op=op)
        for mine, theirs in zip(self.instances, other.instances):
            mine._require_combinable(theirs, op=op)

    def merge(self, other: "MinCutSketch") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "MinCutSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    # -- post-processing ---------------------------------------------------------

    def estimate(self) -> MinCutResult:
        """Run Fig. 1, step 3: ``return 2^j λ(H_j)`` at the stop level."""
        witness_values: list[float] = []
        for i, instance in enumerate(self.instances):
            h = instance.witness()
            lam = global_min_cut_value(h) if h.n >= 2 else 0.0
            witness_values.append(lam)
            if lam < self.k:
                return MinCutResult(
                    value=(2**i) * lam,
                    stop_level=i,
                    witness_cut_values=witness_values,
                    k=self.k,
                )
        # Degenerate: even the deepest level stayed k-connected (can only
        # happen for extreme parameters); report the deepest estimate.
        deepest = len(self.instances) - 1
        return MinCutResult(
            value=(2**deepest) * witness_values[-1],
            stop_level=deepest,
            witness_cut_values=witness_values,
            k=self.k,
        )

    def witnesses(self) -> list[Graph]:
        """All per-level witnesses ``H_i`` (diagnostics / experiments)."""
        return [instance.witness() for instance in self.instances]

    def memory_cells(self) -> int:
        """Total 1-sparse cells across all levels."""
        return sum(instance.memory_cells() for instance in self.instances)
