"""The sparsifier result object (Definition 4) and quality evaluation.

A sparsifier is a weighted subgraph ``H`` with
``(1 - ε) λ_A(G) <= λ_A(H) <= (1 + ε) λ_A(G)`` for **every** node set
``A``.  :class:`Sparsifier` wraps the weighted graph together with
construction provenance (sampling levels, sketch space), and
:func:`cut_approximation_report` measures the achieved quality against
a reference graph — exhaustively for small ``n``, over sampled cuts
plus structured cuts (singletons, the min cut) for larger ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphError
from ..graphs import Graph, stoer_wagner

__all__ = ["Sparsifier", "CutQualityReport", "cut_approximation_report"]


@dataclass(frozen=True, slots=True)
class Sparsifier:
    """A weighted cut sparsifier with provenance.

    Attributes
    ----------
    graph:
        The weighted subgraph ``H``.
    epsilon:
        Target accuracy the construction aimed for.
    edge_levels:
        Sampling level per kept edge (weight is ``2^level × multiplicity``).
    memory_cells:
        1-sparse cells the construction held — the space measurement
        reported in EXPERIMENTS.md.
    """

    graph: Graph
    epsilon: float
    edge_levels: dict[tuple[int, int], int] = field(default_factory=dict)
    memory_cells: int = 0

    @property
    def num_edges(self) -> int:
        """Number of edges kept by the sparsifier."""
        return self.graph.num_edges()

    def cut_value(self, side) -> float:
        """``λ_A(H)`` for the node set ``A = side``."""
        return self.graph.cut_value(side)

    def level_histogram(self) -> dict[int, int]:
        """How many edges were kept at each sampling level."""
        hist: dict[int, int] = {}
        for level in self.edge_levels.values():
            hist[level] = hist.get(level, 0) + 1
        return dict(sorted(hist.items()))


@dataclass(frozen=True, slots=True)
class CutQualityReport:
    """Measured cut-approximation quality of a sparsifier.

    ``max_relative_error`` is the largest ``|λ_A(H) - λ_A(G)| / λ_A(G)``
    over evaluated cuts — the quantity Definition 4 bounds by ``ε``.
    """

    max_relative_error: float
    mean_relative_error: float
    cuts_evaluated: int
    exhaustive: bool
    sparsifier_edges: int
    original_edges: int

    def satisfies(self, epsilon: float) -> bool:
        """Whether the measured quality certifies an ε-sparsifier."""
        return self.max_relative_error <= epsilon + 1e-9


def cut_approximation_report(
    reference: Graph,
    sparsifier: Sparsifier | Graph,
    sample_cuts: int = 2000,
    seed: int = 0,
    exhaustive_limit: int = 15,
) -> CutQualityReport:
    """Measure cut preservation of ``sparsifier`` against ``reference``.

    For ``n <= exhaustive_limit`` every one of the ``2^{n-1} - 1`` cuts
    is checked (the literal quantifier of Definition 4).  Beyond that,
    the report combines structured cuts that stress sparsifiers most —
    every singleton, the reference minimum cut — with ``sample_cuts``
    uniformly random bipartitions.

    Cuts of reference value zero are skipped (relative error undefined);
    the sparsifier is verified to also give zero on them.
    """
    h = sparsifier.graph if isinstance(sparsifier, Sparsifier) else sparsifier
    if h.n != reference.n:
        raise GraphError("sparsifier and reference graphs differ in size")
    n = reference.n

    sides: list[frozenset[int]] = []
    if n <= exhaustive_limit:
        import itertools

        nodes = list(range(1, n))
        for r in range(0, n - 1):
            for rest in itertools.combinations(nodes, r):
                sides.append(frozenset({0, *rest}))
        exhaustive = True
    else:
        exhaustive = False
        sides.extend(frozenset({v}) for v in range(n))
        _, min_side = stoer_wagner(reference)
        sides.append(frozenset(min_side))
        rng = np.random.default_rng(seed)
        for _ in range(sample_cuts):
            mask = rng.random(n) < rng.uniform(0.1, 0.9)
            if 0 < mask.sum() < n:
                sides.append(frozenset(np.nonzero(mask)[0].tolist()))

    worst = 0.0
    total = 0.0
    counted = 0
    for side in sides:
        ref_val = reference.cut_value(side)
        sp_val = h.cut_value(side)
        if ref_val == 0.0:
            if sp_val != 0.0:
                raise GraphError(
                    "sparsifier has positive weight across an empty reference cut"
                )
            continue
        err = abs(sp_val - ref_val) / ref_val
        worst = max(worst, err)
        total += err
        counted += 1
    mean = total / counted if counted else 0.0
    return CutQualityReport(
        max_relative_error=worst,
        mean_relative_error=mean,
        cuts_evaluated=counted,
        exhaustive=exhaustive,
        sparsifier_edges=h.num_edges(),
        original_edges=reference.num_edges(),
    )
