"""The paper's core algorithms: sparsification, subgraphs, spanners."""

from .cut_queries import CutEdgesSketch
from .edge_connect import EdgeConnectivitySketch
from .forest import SpanningForestSketch
from .incidence import decode_incidence_sample, edge_domain, incidence_rows
from .mincut import MinCutResult, MinCutSketch, default_k
from .patterns import (
    CLIQUE_4,
    CYCLE_4,
    EMPTY_3,
    PATH_3,
    PATH_4,
    SINGLE_EDGE_3,
    STAR_4,
    TRIANGLE,
    Pattern,
    encoding_class,
    named_patterns,
)
from .properties import (
    BipartitenessSketch,
    MSTWeightSketch,
    is_k_connected_sketch,
)
from .spanner_bs import BaswanaSenSpanner, SpannerBuildReport
from .spanner_common import ClusterState, NeighborhoodSketch
from .spanner_recurse import RecurseConnectSpanner, recurse_connect_stretch_bound
from .sparsifier import CutQualityReport, Sparsifier, cut_approximation_report
from .sparsify import Sparsification, SparsificationDiagnostics
from .sparsify_simple import SimpleSparsification, default_sparsifier_k
from .subgraph_count import GammaEstimate, SubgraphSketch
from .weighted import WeightedSparsification, weight_class_of
from . import codecs as _codecs  # noqa: F401  (registers sketch codecs)

__all__ = [
    "BaswanaSenSpanner",
    "BipartitenessSketch",
    "CutEdgesSketch",
    "MSTWeightSketch",
    "is_k_connected_sketch",
    "CLIQUE_4",
    "CYCLE_4",
    "ClusterState",
    "CutQualityReport",
    "EMPTY_3",
    "EdgeConnectivitySketch",
    "GammaEstimate",
    "MinCutResult",
    "MinCutSketch",
    "NeighborhoodSketch",
    "PATH_3",
    "PATH_4",
    "Pattern",
    "RecurseConnectSpanner",
    "SINGLE_EDGE_3",
    "STAR_4",
    "SpannerBuildReport",
    "SpanningForestSketch",
    "Sparsification",
    "SparsificationDiagnostics",
    "Sparsifier",
    "SimpleSparsification",
    "SubgraphSketch",
    "TRIANGLE",
    "WeightedSparsification",
    "cut_approximation_report",
    "decode_incidence_sample",
    "default_k",
    "default_sparsifier_k",
    "edge_domain",
    "encoding_class",
    "incidence_rows",
    "named_patterns",
    "recurse_connect_stretch_bound",
    "weight_class_of",
]
