"""Weighted-graph sparsification — Section 3.5; Theorem 3.8.

Strategy straight from the paper: partition the edges into ``O(log W)``
dyadic **weight classes** ``[1, 2), [2, 4), ..., [2^j, 2^{j+1}), ...``,
run an independent sparsifier per class (Lemma 3.6: within a class,
weights vary by a factor < 2, handled by scaling the connectivity
threshold — our ``weight_scale``), and merge the per-class sparsifiers.
The merge of ε-sparsifiers of edge-disjoint subgraphs is an
ε-sparsifier of the union because cut values add.

Stream model: weights travel as signed multiplicities, and tokens are
assumed *weight-atomic* — an edge of weight ``w`` is inserted/deleted
with ``delta = ±w`` (the convention of
:func:`repro.streams.generators.weighted_churn_stream`).  Atomicity is
what lets a linear sketch route a token to its dyadic class by
``floor(log2 |delta|)`` without knowing the final graph.
"""

from __future__ import annotations

import numpy as np

from ..errors import incompatible
from ..graphs import Graph
from ..hashing import HashSource
from ..sketch import ArenaBacked
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import ceil_log2
from .sparsifier import Sparsifier
from .sparsify_simple import SimpleSparsification

__all__ = ["WeightedSparsification", "weight_class_of"]


def weight_class_of(delta: int) -> int:
    """Dyadic weight class ``floor(log2 |delta|)`` of a token."""
    if delta == 0:
        raise ValueError("zero-delta token has no weight class")
    return abs(delta).bit_length() - 1


class WeightedSparsification(ArenaBacked):
    """Dynamic-stream ε-sparsifier for polynomially weighted graphs.

    Parameters
    ----------
    n:
        Node universe size.
    max_weight:
        Upper bound on edge weights; determines the number of classes
        ``floor(log2 max_weight) + 1``.
    epsilon:
        Target cut accuracy.
    source:
        Seed source; every class derives independent randomness.
    c_k:
        Constant scale for the per-class witness parameter.
    rounds, rows, buckets:
        Forest-sketch tuning knobs passed to every class.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"sparsifier"})

    def __init__(
        self,
        n: int,
        max_weight: int,
        epsilon: float = 0.5,
        source: HashSource | None = None,
        c_k: float = 0.5,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if max_weight < 1:
            raise ValueError(f"max_weight must be >= 1, got {max_weight}")
        if source is None:
            source = HashSource(0x3E1D)
        self.n = n
        self.epsilon = epsilon
        self.c_k = c_k
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.max_weight = max_weight
        self.num_classes = ceil_log2(max_weight + 1)
        self.num_classes = max(self.num_classes, 1)
        self.classes = [
            SimpleSparsification(
                n,
                epsilon=epsilon,
                source=source.derive(0x3C, j),
                c_k=c_k,
                weight_scale=float(2 ** (j + 1)),
                rounds=rounds,
                rows=rows,
                buckets=buckets,
            )
            for j in range(self.num_classes)
        ]

    def update(self, update: EdgeUpdate) -> None:
        """Route a weight-atomic token to its dyadic class sketch."""
        w = abs(update.delta)
        if w > self.max_weight:
            raise ValueError(
                f"token weight {w} exceeds configured max_weight {self.max_weight}"
            )
        self.classes[weight_class_of(update.delta)].update(update)

    def consume(self, stream: DynamicGraphStream) -> "WeightedSparsification":
        """Feed an entire stream (single pass), splitting by class."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "WeightedSparsification":
        """Ingest one columnar batch, routed to the dyadic class sketches."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        if len(batch) == 0:
            return self
        w = np.abs(batch.delta)
        over = w > self.max_weight
        if over.any():
            raise ValueError(
                f"token weight {int(w[over][0])} exceeds configured max_weight "
                f"{self.max_weight}"
            )
        # weight_class_of, vectorised: largest j with 2^j <= w (exact
        # integer comparisons via searchsorted on the dyadic boundaries).
        powers = np.int64(1) << np.arange(self.num_classes, dtype=np.int64)
        classes = np.searchsorted(powers, w, side="right") - 1
        for j, sketch in enumerate(self.classes):
            mask = classes == j
            if mask.any():
                sketch.consume_batch(batch.select(mask))
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [b for cl in self.classes for b in cl._cell_banks()]

    def _require_combinable(self, other: "WeightedSparsification", op: str = "merge") -> None:
        for field in ("n", "num_classes", "max_weight"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "WeightedSparsification", field, getattr(self, field),
                    getattr(other, field), op=op)
        for mine, theirs in zip(self.classes, other.classes):
            mine._require_combinable(theirs, op=op)

    def merge(self, other: "WeightedSparsification") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "WeightedSparsification") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    def sparsifier(self) -> Sparsifier:
        """Merge the per-class sparsifiers into one weighted subgraph."""
        merged = Graph(self.n)
        edge_levels: dict[tuple[int, int], int] = {}
        for sketch in self.classes:
            part = sketch.sparsifier()
            for u, v, w in part.graph.weighted_edges():
                merged.add_edge(u, v, w)
            edge_levels.update(part.edge_levels)
        return Sparsifier(
            graph=merged,
            epsilon=self.epsilon,
            edge_levels=edge_levels,
            memory_cells=self.memory_cells(),
        )

    def memory_cells(self) -> int:
        """Total 1-sparse cells across all weight classes."""
        return sum(sketch.memory_cells() for sketch in self.classes)
