"""AGM spanning-forest / connectivity sketch.

The substrate the paper imports from the authors' companion SODA'12
work [4] (cited as the source of Theorem 2.3): a linear sketch from
which a spanning forest of the graph can be extracted.

Construction.  Keep ``rounds = O(log n)`` independent families of ℓ₀
samplers, one sampler per node per family, each sketching that node's
signed incidence vector ``x^u`` (see :mod:`repro.core.incidence`).
Extraction runs Borůvka: starting from singleton components, each round
``t`` sums the *round-t* sketches of every component's member nodes —
by linearity this is a sketch of ``Σ_{u∈C} x^u``, whose support is
exactly the edges leaving ``C`` — samples one outgoing edge per
component, and merges.  Components halve per round w.h.p., so
``O(log n)`` rounds suffice; using a fresh sampler family per round
keeps the samples independent of the (adaptively chosen) components.

The class is a *linear* sketch: updates may insert and delete edges in
any order, and identically-seeded sketches can be merged (distributed
streams, Section 1.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import incompatible
from ..graphs import UnionFind
from ..hashing import HashSource
from ..kernels import get as _get_kernel
from ..sketch import ArenaBacked, L0SamplerBank
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import ceil_log2, pair_rank_array, pair_unrank
from .incidence import edge_domain

__all__ = ["SpanningForestSketch"]

_K_FOREST_SCATTER = _get_kernel("forest_scatter")


class SpanningForestSketch(ArenaBacked):
    """Linear sketch supporting spanning-forest extraction.

    Parameters
    ----------
    n:
        Node universe size.
    source:
        Seed source (determines every hash function).
    rounds:
        Borůvka rounds / independent sampler families.  Defaults to
        ``ceil(log2 n) + 2`` which suffices w.h.p.; raise it to push
        the failure probability down.
    rows, buckets:
        ℓ₀-sampler grid dimensions (see :class:`~repro.sketch.l0.
        L0SamplerBank`).
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"connectivity"})

    def __init__(
        self,
        n: int,
        source: HashSource,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if n < 2:
            raise ValueError(f"need at least two nodes, got {n}")
        self.n = n
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.rows = rows
        self.buckets = buckets
        self.rounds = rounds if rounds is not None else ceil_log2(n) + 2
        if self.rounds < 1:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        self.bank = L0SamplerBank(
            families=self.rounds,
            samplers=n,
            domain=edge_domain(n),
            source=source,
            rows=rows,
            buckets=buckets,
        )

    # -- stream side -----------------------------------------------------------

    def update(self, update: EdgeUpdate) -> None:
        """Apply one edge update to every family of the sketch."""
        self.update_edges(
            np.array([update.lo], dtype=np.int64),
            np.array([update.hi], dtype=np.int64),
            np.array([update.delta], dtype=np.int64),
        )

    #: Edges per scatter block — bounds the peak memory of the
    #: ``2 * rounds`` row expansion for arbitrarily large bulk updates.
    _CHUNK = 65536

    def update_edges(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        deltas: np.ndarray,
        items: np.ndarray | None = None,
        _pre: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Vectorised bulk update of canonical edges ``(lo < hi)``.

        Runs the fused ``forest_scatter`` kernel — every family, both
        signed endpoints, and the level expansion in one scatter —
        chunked so peak memory stays bounded for any batch size.
        ``items`` may carry the precomputed pair ranks (a
        :class:`StreamBatch` has them); when omitted they are derived
        from the endpoints.  ``_pre`` optionally carries the items'
        ``(unique, inverse)`` dedup so sibling sketches fed the same
        payload (the ``k`` groups of a ``k-EDGECONNECT``) share the
        sort; it must match ``items`` exactly and is ignored when the
        batch needs chunking.
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if lo.size == 0:
            return
        if items is None:
            items = pair_rank_array(lo, hi, self.n)
        else:
            items = np.asarray(items, dtype=np.int64)
        if lo.size > self._CHUNK:
            for start in range(0, lo.size, self._CHUNK):
                end = start + self._CHUNK
                _K_FOREST_SCATTER(
                    self.bank, lo[start:end], hi[start:end],
                    deltas[start:end], items[start:end],
                )
            return
        _K_FOREST_SCATTER(self.bank, lo, hi, deltas, items, pre=_pre)

    def consume(self, stream: DynamicGraphStream) -> "SpanningForestSketch":
        """Feed an entire stream (single pass); returns self for chaining."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "SpanningForestSketch":
        """Ingest a columnar batch (shared across sketches/levels)."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        self.update_edges(batch.lo, batch.hi, batch.delta, items=batch.ranks)
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [self.bank.bank]

    def _require_combinable(self, other: "SpanningForestSketch", op: str = "merge") -> None:
        if other.n != self.n:
            raise incompatible("SpanningForestSketch", "n", self.n, other.n, op=op)
        if other.rounds != self.rounds:
            raise incompatible(
                "SpanningForestSketch", "rounds", self.rounds, other.rounds, op=op)
        self.bank._require_combinable(other.bank, op=op)

    def merge(self, other: "SpanningForestSketch") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "SpanningForestSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    # -- extraction -------------------------------------------------------------

    def spanning_forest(self) -> list[tuple[int, int, int]]:
        """Extract a spanning forest as ``(u, v, multiplicity)`` triples.

        Borůvka over the sketch; each returned edge is certified by the
        1-sparse fingerprints, so returned edges are real graph edges
        w.h.p.  If the sampler budget runs out before components stop
        shrinking the forest may be partial (more components than the
        true graph has); callers needing certainty can retry with more
        ``rounds`` or a different seed.
        """
        uf = UnionFind(self.n)
        forest: list[tuple[int, int, int]] = []
        for t in range(self.rounds):
            components = uf.groups()
            if len(components) == 1:
                break
            merged_any = False
            decode_failed = False
            # One whole-bank kernel call decodes every component's
            # summed sampler for this round at once; the per-component
            # union bookkeeping stays in Python but touches no cells.
            groups = list(components.values())
            status, items, values = self.bank.sample_many(t, groups)
            for ci in range(len(groups)):
                st = int(status[ci])
                if st != 0:
                    # A zero vector (1) means the component has no
                    # outgoing edge (isolated w.h.p.); a decode failure
                    # (2) says nothing — a later round's fresh samplers
                    # may still recover an edge, so it must not end the
                    # extraction early.
                    if st == 2:
                        decode_failed = True
                    continue
                a, b = pair_unrank(int(items[ci]), self.n)
                if uf.union(a, b):
                    forest.append((a, b, abs(int(values[ci]))))
                    merged_any = True
            if not merged_any and not decode_failed and t > 0:
                # Every remaining component reported a zero outgoing
                # vector in a full round; they are isolated w.h.p.
                break
        return forest

    def connected_components(self) -> list[set[int]]:
        """Connected components implied by the extracted forest."""
        uf = UnionFind(self.n)
        for u, v, _ in self.spanning_forest():
            uf.union(u, v)
        return [set(members) for members in uf.groups().values()]

    def is_connected(self) -> bool:
        """Whether the sketched graph is connected (w.h.p. correct)."""
        return len(self.connected_components()) == 1

    def memory_cells(self) -> int:
        """Total 1-sparse cells held (space accounting for experiments)."""
        return self.bank.memory_cells()
