"""Cut-edge queries from per-node sparse-recovery sketches.

The reusable device inside Fig. 3 step 4(c), exposed as a first-class
API: keep one ``k-RECOVERY`` sketch of the signed incidence vector
``x^u`` (Eq. 1) per node; then, for **any** node set ``A`` chosen at
query time, ``Σ_{u∈A} x^u`` cancels internal edges and k-RECOVERY
returns *exactly* the set of edges crossing ``(A, V \\ A)`` — provided
at most ``k`` edges cross, else FAIL (Theorem 2.2 semantics).

This is the sketch equivalent of an adjacency query for cuts: a
single ``O(kn polylog)``-cell linear sketch answers cut-edge listings
for all ``2^n`` cuts of bounded size, under insertions and deletions.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import RecoveryFailed, incompatible
from ..hashing import HashSource
from ..sketch import ArenaBacked, SparseRecoveryBank
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import pair_count, pair_unrank

__all__ = ["CutEdgesSketch"]


class CutEdgesSketch(ArenaBacked):
    """Linear sketch answering "which edges cross this cut?" queries.

    Parameters
    ----------
    n:
        Node universe size.
    k:
        Maximum number of crossing edges a query can list; queries on
        cuts with more crossing edges raise
        :class:`~repro.errors.RecoveryFailed` (honestly, w.h.p.).
    source:
        Seed source.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"cut-query"})

    def __init__(self, n: int, k: int, source: HashSource | None = None):
        if n < 2:
            raise ValueError(f"need at least two nodes, got {n}")
        if k < 1:
            raise ValueError(f"cut capacity k must be >= 1, got {k}")
        if source is None:
            source = HashSource(0xC07)
        self.n = n
        self.k = k
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.bank = SparseRecoveryBank(
            groups=1,
            instances=n,
            domain=pair_count(n),
            k=k,
            source=source,
        )

    def update(self, update: EdgeUpdate) -> None:
        """Apply one edge update (signed rows to both endpoint sketches)."""
        lo, hi, delta = update.lo, update.hi, update.delta
        e = lo * self.n - lo * (lo + 1) // 2 + (hi - lo - 1)
        self.bank.update(
            np.zeros(2, dtype=np.int64),
            np.array([lo, hi], dtype=np.int64),
            np.array([e, e], dtype=np.int64),
            np.array([delta, -delta], dtype=np.int64),
        )

    def consume(self, stream: DynamicGraphStream) -> "CutEdgesSketch":
        """Feed an entire stream (single pass), vectorised."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "CutEdgesSketch":
        """Ingest one columnar batch (both signed endpoint rows at once)."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        m = len(batch)
        if m == 0:
            return self
        self.bank.update(
            np.zeros(2 * m, dtype=np.int64),
            np.concatenate([batch.lo, batch.hi]),
            np.concatenate([batch.ranks, batch.ranks]),
            np.concatenate([batch.delta, -batch.delta]),
        )
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [self.bank.bank]

    def _require_combinable(self, other: "CutEdgesSketch", op: str = "merge") -> None:
        if other.n != self.n:
            raise incompatible("CutEdgesSketch", "n", self.n, other.n, op=op)
        if other.k != self.k:
            raise incompatible("CutEdgesSketch", "k", self.k, other.k, op=op)
        self.bank._require_combinable(other.bank, op=op)

    def merge(self, other: "CutEdgesSketch") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "CutEdgesSketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    def crossing_edges(self, side: Iterable[int]) -> dict[tuple[int, int], int]:
        """Edges crossing ``(side, V \\ side)`` with their multiplicities.

        Raises
        ------
        RecoveryFailed
            If more than ``k`` edges cross the cut (w.h.p. honest).
        ValueError
            If the side is empty, full, or contains invalid nodes.
        """
        members = sorted(set(side))
        if not members or len(members) >= self.n:
            raise ValueError("cut side must be a proper non-empty node subset")
        for v in members:
            if not 0 <= v < self.n:
                raise ValueError(f"node {v} outside universe [0, {self.n})")
        decoded = self.bank.decode_sum(0, members)
        out: dict[tuple[int, int], int] = {}
        for item, value in decoded.items():
            u, v = pair_unrank(item, self.n)
            out[(u, v)] = abs(value)
        return out

    def cut_value(self, side: Iterable[int]) -> int:
        """Total multiplicity crossing the cut (errors if > k edges cross)."""
        return sum(self.crossing_edges(side).values())

    def is_cut_empty(self, side: Iterable[int]) -> bool:
        """Whether no edge crosses the cut (side is a union of components)."""
        try:
            return not self.crossing_edges(side)
        except RecoveryFailed:
            return False

    def memory_cells(self) -> int:
        """Total 1-sparse cells (space accounting)."""
        return self.bank.memory_cells()
