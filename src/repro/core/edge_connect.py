"""``k-EDGECONNECT`` — the witness sketch of Theorem 2.3.

Returns a subgraph ``H`` with ``O(kn)`` edges containing every edge
that participates in a cut of size ``k`` or less; consequently ``H``
preserves every cut value of the input up to ``k`` (values above ``k``
stay above ``k``).  The MINCUT and SIMPLE-SPARSIFICATION algorithms
build their entire subsampling hierarchy out of these witnesses.

Construction (following the authors' companion work [4]): keep ``k``
independent :class:`~repro.core.forest.SpanningForestSketch` groups.
To extract the witness, peel forests: ``F_1`` is a spanning forest of
``G``; then, *exploiting linearity*, subtract ``F_1``'s edges from the
second group's sketch and extract ``F_2``, a spanning forest of
``G - F_1``; and so on.  ``H = F_1 ∪ ... ∪ F_k`` is exactly the
Nagamochi–Ibaraki sparse certificate (see :func:`repro.graphs.
connectivity.sparse_certificate`) computed from linear measurements
only — each group's randomness is fresh, so conditioning on earlier
forests does not bias later samplers.
"""

from __future__ import annotations

import numpy as np

from ..errors import incompatible
from ..graphs import Graph
from ..hashing import HashSource
from ..sketch import ArenaBacked
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import pair_rank_array
from .forest import SpanningForestSketch

__all__ = ["EdgeConnectivitySketch"]


class EdgeConnectivitySketch(ArenaBacked):
    """Linear sketch computing a k-edge-connectivity witness.

    Parameters
    ----------
    n:
        Node universe size.
    k:
        Connectivity parameter: cuts of value ``<= k`` are preserved
        exactly in the witness.
    source:
        Seed source; group ``g`` derives independent randomness.
    rounds:
        Borůvka rounds per group (see :class:`SpanningForestSketch`).
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"k-edge-connectivity", "connectivity"})

    def __init__(
        self,
        n: int,
        k: int,
        source: HashSource,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if k < 1:
            raise ValueError(f"connectivity parameter k must be >= 1, got {k}")
        self.n = n
        self.k = k
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.groups = [
            SpanningForestSketch(
                n, source.derive(0xEC, g), rounds=rounds, rows=rows, buckets=buckets
            )
            for g in range(k)
        ]

    # -- stream side -----------------------------------------------------------

    def update(self, update: EdgeUpdate) -> None:
        """Apply one edge update to every group."""
        for group in self.groups:
            group.update(update)

    def update_edges(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        deltas: np.ndarray,
        items: np.ndarray | None = None,
    ) -> None:
        """Vectorised bulk update of canonical edges.

        The pair ranks and their unique/inverse dedup are computed once
        and shared by every group's fused scatter — the groups differ
        only in hash seeds, not in the payload.
        """
        if items is None and len(self.groups) > 1:
            items = pair_rank_array(lo, hi, self.n)
        pre = None
        if items is not None and len(self.groups) > 1:
            items = np.asarray(items, dtype=np.int64)
            if items.size <= SpanningForestSketch._CHUNK:
                uniq, inv = np.unique(items, return_inverse=True)
                pre = (uniq, inv.reshape(items.shape))
        for group in self.groups:
            group.update_edges(lo, hi, deltas, items=items, _pre=pre)

    def consume(self, stream: DynamicGraphStream) -> "EdgeConnectivitySketch":
        """Feed an entire stream (single pass)."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "EdgeConnectivitySketch":
        """Ingest one columnar batch into every group (no re-conversion)."""
        for group in self.groups:
            group.consume_batch(batch)
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [b for group in self.groups for b in group._cell_banks()]

    def _require_combinable(self, other: "EdgeConnectivitySketch", op: str = "merge") -> None:
        if other.n != self.n:
            raise incompatible("EdgeConnectivitySketch", "n", self.n, other.n, op=op)
        if other.k != self.k:
            raise incompatible("EdgeConnectivitySketch", "k", self.k, other.k, op=op)
        for mine, theirs in zip(self.groups, other.groups):
            mine._require_combinable(theirs, op=op)

    def merge(self, other: "EdgeConnectivitySketch") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "EdgeConnectivitySketch") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    # -- extraction -------------------------------------------------------------

    def witness(self) -> Graph:
        """Extract the witness subgraph ``H = F_1 ∪ ... ∪ F_k``.

        Edges carry their recovered multiplicity as weight.  The
        extraction temporarily subtracts found forests from later
        groups and restores them afterwards, so :meth:`witness` can be
        called repeatedly and the sketch remains mergeable.
        """
        found: dict[tuple[int, int], int] = {}
        witness = Graph(self.n)
        for group in self.groups:
            if found:
                lo, hi, neg = self._edge_arrays(found, negate=True)
                group.update_edges(lo, hi, neg)
            forest = group.spanning_forest()
            if found:
                lo, hi, pos = self._edge_arrays(found, negate=False)
                group.update_edges(lo, hi, pos)
            if not forest:
                break
            for u, v, mult in forest:
                key = (u, v) if u < v else (v, u)
                if key in found:
                    # Duplicate recovery can only happen on sampler
                    # failure artefacts; keep first.
                    continue
                found[key] = mult
                witness.add_edge(key[0], key[1], float(mult))
        return witness

    @staticmethod
    def _edge_arrays(
        found: dict[tuple[int, int], int], negate: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lo = np.fromiter((e[0] for e in found), dtype=np.int64, count=len(found))
        hi = np.fromiter((e[1] for e in found), dtype=np.int64, count=len(found))
        mult = np.fromiter(found.values(), dtype=np.int64, count=len(found))
        return lo, hi, (-mult if negate else mult)

    def memory_cells(self) -> int:
        """Total 1-sparse cells across all groups."""
        return sum(group.memory_cells() for group in self.groups)
