"""k-adaptive Baswana–Sen emulation — Section 5 (first construction).

A ``(2k-1)``-spanner from ``k`` batches of linear measurements, with
``Õ(n^{1+1/k})`` measurements — the optimal stretch/space trade-off,
paying ``k`` adaptivity rounds (``k`` passes in a stream deployment).

Phases follow the paper's outline:

* **Growing trees** (batches ``1..k-1``).  Before batch ``i`` the root
  set ``S_i`` is subsampled from ``S_{i-1}`` with probability
  ``n^{-1/k}`` (consistent hashing — no data needed).  During the batch
  two sketches are filled for every live vertex ``u``: an ℓ₀ sampler
  restricted to edges into *sampled* trees, and a
  :class:`~repro.core.spanner_common.NeighborhoodSketch` bucketing the
  other endpoint's tree.  Afterwards each live vertex whose tree root
  was not re-sampled either **joins** an adjacent sampled tree (adding
  the witness edge) or — if none was found — **finishes**, adding one
  witness edge per adjacent tree (the paper's ``L(u)``).
* **Final clean-up** (batch ``k``).  Every vertex still in a tree adds
  one witness edge to every adjacent ``T_{k-1}`` tree.

The output spanner has ``O(k n^{1+1/k})`` edges in expectation and
stretch ``2k - 1`` w.h.p. (bucket collisions can miss a cluster with
small probability; the ``c_buckets`` knob trades space for that
probability — experiment E6 sweeps it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SamplerFailed
from ..graphs import Graph
from ..hashing import HashSource
from ..sketch import L0SamplerBank
from ..streams import DynamicGraphStream
from ..util import pair_count, pair_unrank
from .spanner_common import ClusterState, NeighborhoodSketch

__all__ = ["BaswanaSenSpanner", "SpannerBuildReport"]


@dataclass(frozen=True, slots=True)
class SpannerBuildReport:
    """Construction statistics of an adaptive spanner build.

    ``batches`` is the adaptivity ``r`` of the scheme (equals the number
    of stream passes a streaming deployment would use).
    """

    spanner: Graph
    batches: int
    stretch_bound: float
    memory_cells: int
    edges: int
    #: Bytes shipped site → coordinator across all batches of a sharded
    #: build (0 for single-site builds, where nothing crosses a wire).
    shipped_bytes: int = 0


class BaswanaSenSpanner:
    """(2k-1)-spanner from k adaptive batches of sketches.

    Parameters
    ----------
    n:
        Node universe size.
    k:
        Stretch parameter; stretch bound is ``2k - 1``.
    source:
        Seed source.
    c_buckets:
        Scale for the per-vertex cluster-bucket budget
        (``buckets = c_buckets · n^{1/k} · log2 n``).
    sample_copies:
        Independent ℓ₀ samplers per vertex for the join-an-adjacent-
        sampled-tree step (retries against sampler failure).
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"spanner-distance"})

    def __init__(
        self,
        n: int,
        k: int,
        source: HashSource | None = None,
        c_buckets: float = 2.0,
        sample_copies: int = 3,
    ):
        if k < 2:
            raise ValueError(f"stretch parameter k must be >= 2, got {k}")
        if source is None:
            source = HashSource(0xB5)
        self.n = n
        self.k = k
        self.source = source
        self.sample_prob = n ** (-1.0 / k)
        self.buckets = max(
            2, int(math.ceil(c_buckets * n ** (1.0 / k) * math.log2(max(n, 2))))
        )
        self.sample_copies = sample_copies
        self._memory_cells = 0
        self._batches = 0
        self._shipped_bytes = 0

    # -- batch drivers -----------------------------------------------------------

    def build(self, stream: DynamicGraphStream) -> SpannerBuildReport:
        """Run all ``k`` adaptive batches over the (replayable) stream."""
        return self.build_sharded([stream])

    def build_sharded(
        self, shards: list[DynamicGraphStream]
    ) -> SpannerBuildReport:
        """Run the adaptive build over a multi-site partitioned stream.

        The coordinator-orchestrated round protocol of Section 1.1:
        each adaptive batch, every site fills the batch's sketches over
        *its shard only* and ships them (serialised banks); the
        coordinator merges by addition — bit-identical to the
        single-stream sketches, by linearity — and takes the batch's
        join/finish decisions centrally.  The resulting spanner is
        therefore *exactly* the spanner ``build`` would produce on the
        concatenated stream, for any shard count or assignment.

        With a single shard no serialisation round trip is performed
        (``shipped_bytes`` stays 0).
        """
        if not shards:
            raise ValueError("need at least one shard")
        for shard in shards:
            if shard.n != self.n:
                raise ValueError("shard and spanner node universes differ")
        self._memory_cells = 0
        self._batches = 0
        self._shipped_bytes = 0
        spanner = Graph(self.n)
        state = ClusterState(self.n)
        sampled: set[int] = set(range(self.n))  # S_0 = V

        for phase in range(1, self.k):
            sampled = self._subsample_roots(sampled, phase)
            self._run_growth_batch(shards, state, sampled, spanner, phase)

        self._run_cleanup_batch(shards, state, spanner)
        return SpannerBuildReport(
            spanner=spanner,
            batches=self._batches,
            stretch_bound=2 * self.k - 1,
            memory_cells=self._memory_cells,
            edges=spanner.num_edges(),
            shipped_bytes=self._shipped_bytes,
        )

    def _subsample_roots(self, previous: set[int], phase: int) -> set[int]:
        """Consistent subsample ``S_i ⊆ S_{i-1}`` at rate ``n^{-1/k}``."""
        coin = self.source.derive(0x5A, phase)
        return {r for r in previous if bool(coin.bernoulli(r, self.sample_prob))}

    def _make_growth_sketches(
        self, batch_source
    ) -> tuple[L0SamplerBank, NeighborhoodSketch]:
        """This phase's two sketch structures (identical at every site)."""
        join_bank = L0SamplerBank(
            families=self.sample_copies,
            samplers=self.n,
            domain=pair_count(self.n),
            source=batch_source.derive(1),
            rows=2,
            buckets=4,
        )
        hood = NeighborhoodSketch(self.n, self.buckets, batch_source.derive(2))
        return join_bank, hood

    def _run_growth_batch(
        self,
        shards: list[DynamicGraphStream],
        state: ClusterState,
        sampled: set[int],
        spanner: Graph,
        phase: int,
    ) -> None:
        """One tree-growing phase: fill sketches, then join or finish."""
        self._batches += 1
        batch_source = self.source.derive(0xB1, phase)

        # Sketch 1: per-vertex ℓ₀ samplers over edges into sampled trees.
        # Sketch 2: bucketed per-adjacent-tree witnesses.
        join_bank, hood = self._make_growth_sketches(batch_source)

        if len(shards) == 1:
            self._fill_growth_sketches(shards[0], state, sampled, join_bank)
            hood.consume(shards[0], state)
        else:
            for shard in shards:
                site_join, site_hood = self._make_growth_sketches(batch_source)
                self._fill_growth_sketches(shard, state, sampled, site_join)
                site_hood.consume(shard, state)
                join_bank.merge(self._ship(site_join))
                hood.bank.merge(self._ship(site_hood.bank))
        self._memory_cells += join_bank.memory_cells() + hood.memory_cells()

        # Post-processing: decide every live vertex whose root died.
        for u in range(self.n):
            root = state.root[u]
            if root is None or root in sampled:
                continue
            joined = self._try_join(u, join_bank, state, sampled, spanner)
            if joined:
                continue
            # No adjacent sampled tree found: record one edge per
            # adjacent tree and finish u.
            for _root, (a, x) in hood.edges_per_cluster(u, state).items():
                spanner.add_edge(a, x, 1.0)
            state.finish(u)

    def _fill_growth_sketches(
        self,
        stream: DynamicGraphStream,
        state: ClusterState,
        sampled: set[int],
        join_bank: L0SamplerBank,
    ) -> None:
        """Replay the stream into the join samplers (restricted routing)."""
        batch = stream.as_batch()
        root = state.root_array()
        in_sampled = np.zeros(self.n, dtype=bool)
        if sampled:
            in_sampled[np.fromiter(sampled, dtype=np.int64)] = True
        samplers: list[np.ndarray] = []
        items: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        for u, x in ((batch.lo, batch.hi), (batch.hi, batch.lo)):
            rx = root[x]
            mask = (root[u] >= 0) & (rx >= 0)
            mask &= in_sampled[np.where(rx >= 0, rx, 0)]
            if not mask.any():
                continue
            samplers.append(u[mask])
            items.append(batch.ranks[mask])
            deltas.append(batch.delta[mask])
        if not samplers:
            return
        sampler_rows = np.concatenate(samplers)
        item_rows = np.concatenate(items)
        delta_rows = np.concatenate(deltas)
        for copy in range(self.sample_copies):
            join_bank.update(
                np.full(sampler_rows.size, copy, dtype=np.int64),
                sampler_rows,
                item_rows,
                delta_rows,
            )

    def _try_join(
        self,
        u: int,
        join_bank: L0SamplerBank,
        state: ClusterState,
        sampled: set[int],
        spanner: Graph,
    ) -> bool:
        """Attach ``u`` to an adjacent sampled tree if a sampler finds one."""
        for copy in range(self.sample_copies):
            try:
                item, _value = join_bank.sample(copy, u)
            except SamplerFailed:
                continue
            a, b = pair_unrank(item, self.n)
            x = b if a == u else a
            rx = state.root[x]
            if rx is None or rx not in sampled:
                continue  # stale decode; try another copy
            spanner.add_edge(u, x, 1.0)
            state.root[u] = rx
            return True
        return False

    def _ship(self, bank: L0SamplerBank) -> L0SamplerBank:
        """Serialise a site bank and reconstitute it coordinator-side.

        The dump → load round trip is the site → coordinator wire; its
        size is accumulated into ``shipped_bytes``.
        """
        from ..sketch.serialize import dump_l0_bank, load_l0_bank

        payload = dump_l0_bank(bank)
        self._shipped_bytes += len(payload)
        return load_l0_bank(payload)

    def _run_cleanup_batch(
        self, shards: list[DynamicGraphStream], state: ClusterState,
        spanner: Graph,
    ) -> None:
        """Final batch: one witness edge per adjacent surviving tree."""
        self._batches += 1
        hood_source = self.source.derive(0xB1, self.k, 0xF)
        hood = NeighborhoodSketch(self.n, self.buckets, hood_source)
        if len(shards) == 1:
            hood.consume(shards[0], state)
        else:
            for shard in shards:
                site_hood = NeighborhoodSketch(
                    self.n, self.buckets, hood_source
                )
                site_hood.consume(shard, state)
                hood.bank.merge(self._ship(site_hood.bank))
        self._memory_cells += hood.memory_cells()
        for u in range(self.n):
            if not state.alive(u):
                continue
            for root, (a, x) in hood.edges_per_cluster(u, state).items():
                if root == state.root[u]:
                    continue  # intra-tree edges are covered by tree edges
                spanner.add_edge(a, x, 1.0)
