"""k-adaptive Baswana–Sen emulation — Section 5 (first construction).

A ``(2k-1)``-spanner from ``k`` batches of linear measurements, with
``Õ(n^{1+1/k})`` measurements — the optimal stretch/space trade-off,
paying ``k`` adaptivity rounds (``k`` passes in a stream deployment).

Phases follow the paper's outline:

* **Growing trees** (batches ``1..k-1``).  Before batch ``i`` the root
  set ``S_i`` is subsampled from ``S_{i-1}`` with probability
  ``n^{-1/k}`` (consistent hashing — no data needed).  During the batch
  two sketches are filled for every live vertex ``u``: an ℓ₀ sampler
  restricted to edges into *sampled* trees, and a
  :class:`~repro.core.spanner_common.NeighborhoodSketch` bucketing the
  other endpoint's tree.  Afterwards each live vertex whose tree root
  was not re-sampled either **joins** an adjacent sampled tree (adding
  the witness edge) or — if none was found — **finishes**, adding one
  witness edge per adjacent tree (the paper's ``L(u)``).
* **Final clean-up** (batch ``k``).  Every vertex still in a tree adds
  one witness edge to every adjacent ``T_{k-1}`` tree.

The output spanner has ``O(k n^{1+1/k})`` edges in expectation and
stretch ``2k - 1`` w.h.p. (bucket collisions can miss a cluster with
small probability; the ``c_buckets`` knob trades space for that
probability — experiment E6 sweeps it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SamplerFailed
from ..graphs import Graph
from ..hashing import HashSource
from ..sketch import L0SamplerBank
from ..streams import DynamicGraphStream
from ..util import pair_count, pair_unrank
from .spanner_common import ClusterState, NeighborhoodSketch

__all__ = ["BaswanaSenSpanner", "SpannerBuildReport"]


@dataclass(frozen=True, slots=True)
class SpannerBuildReport:
    """Construction statistics of an adaptive spanner build.

    ``batches`` is the adaptivity ``r`` of the scheme (equals the number
    of stream passes a streaming deployment would use).
    """

    spanner: Graph
    batches: int
    stretch_bound: float
    memory_cells: int
    edges: int


class BaswanaSenSpanner:
    """(2k-1)-spanner from k adaptive batches of sketches.

    Parameters
    ----------
    n:
        Node universe size.
    k:
        Stretch parameter; stretch bound is ``2k - 1``.
    source:
        Seed source.
    c_buckets:
        Scale for the per-vertex cluster-bucket budget
        (``buckets = c_buckets · n^{1/k} · log2 n``).
    sample_copies:
        Independent ℓ₀ samplers per vertex for the join-an-adjacent-
        sampled-tree step (retries against sampler failure).
    """

    def __init__(
        self,
        n: int,
        k: int,
        source: HashSource | None = None,
        c_buckets: float = 2.0,
        sample_copies: int = 3,
    ):
        if k < 2:
            raise ValueError(f"stretch parameter k must be >= 2, got {k}")
        if source is None:
            source = HashSource(0xB5)
        self.n = n
        self.k = k
        self.source = source
        self.sample_prob = n ** (-1.0 / k)
        self.buckets = max(
            2, int(math.ceil(c_buckets * n ** (1.0 / k) * math.log2(max(n, 2))))
        )
        self.sample_copies = sample_copies
        self._memory_cells = 0
        self._batches = 0

    # -- batch drivers -----------------------------------------------------------

    def build(self, stream: DynamicGraphStream) -> SpannerBuildReport:
        """Run all ``k`` adaptive batches over the (replayable) stream."""
        if stream.n != self.n:
            raise ValueError("stream and spanner node universes differ")
        self._memory_cells = 0
        self._batches = 0
        spanner = Graph(self.n)
        state = ClusterState(self.n)
        sampled: set[int] = set(range(self.n))  # S_0 = V

        for phase in range(1, self.k):
            sampled = self._subsample_roots(sampled, phase)
            self._run_growth_batch(stream, state, sampled, spanner, phase)

        self._run_cleanup_batch(stream, state, spanner)
        return SpannerBuildReport(
            spanner=spanner,
            batches=self._batches,
            stretch_bound=2 * self.k - 1,
            memory_cells=self._memory_cells,
            edges=spanner.num_edges(),
        )

    def _subsample_roots(self, previous: set[int], phase: int) -> set[int]:
        """Consistent subsample ``S_i ⊆ S_{i-1}`` at rate ``n^{-1/k}``."""
        coin = self.source.derive(0x5A, phase)
        return {r for r in previous if bool(coin.bernoulli(r, self.sample_prob))}

    def _run_growth_batch(
        self,
        stream: DynamicGraphStream,
        state: ClusterState,
        sampled: set[int],
        spanner: Graph,
        phase: int,
    ) -> None:
        """One tree-growing phase: fill sketches, then join or finish."""
        self._batches += 1
        batch_source = self.source.derive(0xB1, phase)

        # Sketch 1: per-vertex ℓ₀ samplers over edges into sampled trees.
        join_bank = L0SamplerBank(
            families=self.sample_copies,
            samplers=self.n,
            domain=pair_count(self.n),
            source=batch_source.derive(1),
            rows=2,
            buckets=4,
        )
        # Sketch 2: bucketed per-adjacent-tree witnesses.
        hood = NeighborhoodSketch(self.n, self.buckets, batch_source.derive(2))

        self._fill_growth_sketches(stream, state, sampled, join_bank)
        hood.consume(stream, state)
        self._memory_cells += join_bank.memory_cells() + hood.memory_cells()

        # Post-processing: decide every live vertex whose root died.
        for u in range(self.n):
            root = state.root[u]
            if root is None or root in sampled:
                continue
            joined = self._try_join(u, join_bank, state, sampled, spanner)
            if joined:
                continue
            # No adjacent sampled tree found: record one edge per
            # adjacent tree and finish u.
            for _root, (a, x) in hood.edges_per_cluster(u, state).items():
                spanner.add_edge(a, x, 1.0)
            state.finish(u)

    def _fill_growth_sketches(
        self,
        stream: DynamicGraphStream,
        state: ClusterState,
        sampled: set[int],
        join_bank: L0SamplerBank,
    ) -> None:
        """Replay the stream into the join samplers (restricted routing)."""
        batch = stream.as_batch()
        root = state.root_array()
        in_sampled = np.zeros(self.n, dtype=bool)
        if sampled:
            in_sampled[np.fromiter(sampled, dtype=np.int64)] = True
        samplers: list[np.ndarray] = []
        items: list[np.ndarray] = []
        deltas: list[np.ndarray] = []
        for u, x in ((batch.lo, batch.hi), (batch.hi, batch.lo)):
            rx = root[x]
            mask = (root[u] >= 0) & (rx >= 0)
            mask &= in_sampled[np.where(rx >= 0, rx, 0)]
            if not mask.any():
                continue
            samplers.append(u[mask])
            items.append(batch.ranks[mask])
            deltas.append(batch.delta[mask])
        if not samplers:
            return
        sampler_rows = np.concatenate(samplers)
        item_rows = np.concatenate(items)
        delta_rows = np.concatenate(deltas)
        for copy in range(self.sample_copies):
            join_bank.update(
                np.full(sampler_rows.size, copy, dtype=np.int64),
                sampler_rows,
                item_rows,
                delta_rows,
            )

    def _try_join(
        self,
        u: int,
        join_bank: L0SamplerBank,
        state: ClusterState,
        sampled: set[int],
        spanner: Graph,
    ) -> bool:
        """Attach ``u`` to an adjacent sampled tree if a sampler finds one."""
        for copy in range(self.sample_copies):
            try:
                item, _value = join_bank.sample(copy, u)
            except SamplerFailed:
                continue
            a, b = pair_unrank(item, self.n)
            x = b if a == u else a
            rx = state.root[x]
            if rx is None or rx not in sampled:
                continue  # stale decode; try another copy
            spanner.add_edge(u, x, 1.0)
            state.root[u] = rx
            return True
        return False

    def _run_cleanup_batch(
        self, stream: DynamicGraphStream, state: ClusterState, spanner: Graph
    ) -> None:
        """Final batch: one witness edge per adjacent surviving tree."""
        self._batches += 1
        hood = NeighborhoodSketch(
            self.n, self.buckets, self.source.derive(0xB1, self.k, 0xF)
        )
        hood.consume(stream, state)
        self._memory_cells += hood.memory_cells()
        for u in range(self.n):
            if not state.alive(u):
                continue
            for root, (a, x) in hood.edges_per_cluster(u, state).items():
                if root == state.root[u]:
                    continue  # intra-tree edges are covered by tree edges
                spanner.add_edge(a, x, 1.0)
