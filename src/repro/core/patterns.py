"""Pattern graphs and their isomorphism-closed encoding classes ``A_H``.

Section 4 reduces counting induced order-k subgraphs isomorphic to a
pattern ``H`` to membership of squash-encoded column values in a set
``A_H``: the encodings of *every* graph on ``k`` labelled vertices that
is isomorphic to ``H``.  For ``k <= 5`` the class is computed by brute
force over vertex permutations (at most ``2^10`` encodings × ``5!``
permutations), once per pattern, and cached.

The bitmask encoding matches :func:`repro.graphs.subgraphs.
induced_edge_pattern` and :mod:`repro.sketch.squash`: bit ``r`` is the
``r``-th vertex pair of the sorted k-subset in lexicographic order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from ..errors import NotSupportedError

__all__ = [
    "Pattern",
    "encoding_class",
    "TRIANGLE",
    "PATH_3",
    "SINGLE_EDGE_3",
    "EMPTY_3",
    "CLIQUE_4",
    "CYCLE_4",
    "PATH_4",
    "STAR_4",
    "named_patterns",
]

#: Largest supported pattern order (encoding enumeration is 2^C(k,2) · k!).
MAX_PATTERN_ORDER = 5


@dataclass(frozen=True)
class Pattern:
    """An unlabelled pattern graph on ``k`` vertices.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports.
    order:
        Number of vertices ``k``.
    edges:
        Canonical labelled edge set on vertices ``0..k-1``; any one
        labelling works since the encoding class closes over
        isomorphism.
    """

    name: str
    order: int
    edges: frozenset[tuple[int, int]]

    def __post_init__(self) -> None:
        if not 2 <= self.order <= MAX_PATTERN_ORDER:
            raise NotSupportedError(
                f"patterns supported for order 2..{MAX_PATTERN_ORDER}, "
                f"got {self.order}"
            )
        for u, v in self.edges:
            if not (0 <= u < v < self.order):
                raise ValueError(f"pattern edge ({u}, {v}) is not canonical")

    def encoding(self, perm: tuple[int, ...]) -> int:
        """Bitmask of this pattern under a vertex relabelling ``perm``."""
        mask = 0
        bit = 0
        for i in range(self.order):
            for j in range(i + 1, self.order):
                a, b = perm[i], perm[j]
                if (min(a, b), max(a, b)) in self.edges:
                    mask |= 1 << bit
                bit += 1
        return mask


@lru_cache(maxsize=None)
def encoding_class(pattern: Pattern) -> frozenset[int]:
    """The set ``A_H`` of all encodings isomorphic to the pattern.

    A squash-recovered column value ``v`` corresponds to an induced
    subgraph isomorphic to ``H`` iff ``v ∈ encoding_class(H)``.
    """
    masks = {
        pattern.encoding(perm)
        for perm in itertools.permutations(range(pattern.order))
    }
    return frozenset(masks)


def _pat(name: str, order: int, edges: list[tuple[int, int]]) -> Pattern:
    return Pattern(name=name, order=order, edges=frozenset(edges))


#: The triangle — the paper's headline special case (matches Buriol et al.).
TRIANGLE = _pat("triangle", 3, [(0, 1), (0, 2), (1, 2)])
#: Induced path on three vertices (a "wedge" as an induced subgraph).
PATH_3 = _pat("path3", 3, [(0, 1), (1, 2)])
#: Exactly one edge plus an isolated vertex.
SINGLE_EDGE_3 = _pat("single-edge3", 3, [(0, 1)])
#: The empty graph on three vertices (excluded from γ_H's denominator).
EMPTY_3 = _pat("empty3", 3, [])
#: The 4-clique.
CLIQUE_4 = _pat("clique4", 4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
#: The 4-cycle (induced).
CYCLE_4 = _pat("cycle4", 4, [(0, 1), (1, 2), (2, 3), (0, 3)])
#: Induced path on four vertices.
PATH_4 = _pat("path4", 4, [(0, 1), (1, 2), (2, 3)])
#: The star K_{1,3} ("claw").
STAR_4 = _pat("star4", 4, [(0, 1), (0, 2), (0, 3)])


def named_patterns() -> dict[str, Pattern]:
    """Registry of the built-in patterns, keyed by name."""
    return {
        p.name: p
        for p in (
            TRIANGLE,
            PATH_3,
            SINGLE_EDGE_3,
            EMPTY_3,
            CLIQUE_4,
            CYCLE_4,
            PATH_4,
            STAR_4,
        )
    }
