"""Experiment harness: workloads, metrics, tables, runners E1–E10."""

from .experiments import EXPERIMENTS, run_experiment
from .metrics import RunSummary, relative_error, summarize
from .tables import Table
from .workloads import WORKLOADS, Workload, make_workload

__all__ = [
    "EXPERIMENTS",
    "RunSummary",
    "Table",
    "WORKLOADS",
    "Workload",
    "make_workload",
    "relative_error",
    "run_experiment",
    "summarize",
]
