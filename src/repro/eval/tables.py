"""Minimal result-table rendering for the experiment harness.

Every experiment produces a :class:`Table`; benchmarks print it (the
"same rows the paper reports" — here, the rows each theorem predicts)
and EXPERIMENTS.md archives the rendered output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Table"]


@dataclass
class Table:
    """A titled table with typed columns and formatted rendering.

    Attributes
    ----------
    title:
        Table caption, conventionally ``"E3: <claim summary>"``.
    columns:
        Column headers.
    rows:
        Row values; any type, formatted with :func:`_fmt`.
    notes:
        Free-text caveats appended under the table.
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a caveat line rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render as GitHub-flavoured markdown."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells), 3)
            if cells
            else max(len(self.columns[i]), 3)
            for i in range(len(self.columns))
        ]
        header = "| " + " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        ) + " |"
        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            for row in cells
        ]
        out = [f"### {self.title}", "", header, sep, *body]
        if self.notes:
            out.append("")
            out.extend(f"> {note}" for note in self.notes)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
