"""Experiment runners E1–E10: one per reproduced claim (DESIGN.md §4).

The paper is a theory paper — its "evaluation" is the theorem suite, so
each experiment here regenerates the measurable content of one claim:
the workload, the sweep, the baseline, and a table whose *shape* (who
wins, how errors scale) must match what the theorem predicts.  The
benchmarks under ``benchmarks/`` time these same runners;
``python -m repro.cli run <id>`` prints the tables; EXPERIMENTS.md
archives representative output.

Every runner takes ``quick`` (trimmed parameters for CI) and ``seed``.
"""

from __future__ import annotations

import math
import time
from collections import Counter

import numpy as np

from ..baselines import (
    BuriolTriangleEstimator,
    baswana_sen_offline,
    fung_sparsify,
    karger_sparsify,
)
from ..core import (
    PATH_3,
    TRIANGLE,
    BaswanaSenSpanner,
    EdgeConnectivitySketch,
    MinCutSketch,
    RecurseConnectSpanner,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
    cut_approximation_report,
    encoding_class,
)
from ..errors import RecoveryFailed, SamplerFailed
from ..graphs import (
    gamma_exact,
    global_min_cut_value,
    measure_stretch,
    spanning_forest,
    triangle_count,
)
from ..hashing import HashSource, KWiseHash, NisanPRG
from ..sketch import L0Sampler, L0SamplerBank, SparseRecovery
from ..streams import stream_from_edges
from .metrics import relative_error, summarize
from .tables import Table
from .workloads import make_workload

__all__ = ["EXPERIMENTS", "run_experiment"]


def run_e1_mincut(quick: bool = True, seed: int = 0) -> Table:
    """E1 — Fig. 1 / Thm 3.2: single-pass (1+ε) min cut under churn."""
    table = Table(
        "E1: MINCUT — (1+ε) minimum cut in a single pass over a dynamic stream",
        ["workload", "eps", "c_k", "k", "true λ", "estimate", "rel.err",
         "stop lvl", "cells"],
    )
    workloads = ["dumbbell"] if quick else ["dumbbell", "dumbbell-large", "er-small"]
    sweeps = [(0.5, 1.0)] if quick else [(0.5, 0.5), (0.5, 1.0), (0.5, 2.0)]
    for wname in workloads:
        wl = make_workload(wname, seed=seed)
        truth = global_min_cut_value(wl.graph)
        for eps, c_k in sweeps:
            sketch = MinCutSketch(
                wl.graph.n, epsilon=eps, source=HashSource(seed + 100), c_k=c_k
            ).consume_batch(wl.stream.as_batch())
            result = sketch.estimate()
            table.add_row(
                wl.name, eps, c_k, result.k, truth, result.value,
                relative_error(result.value, truth), result.stop_level,
                sketch.memory_cells(),
            )
    table.add_note(
        "Claim: estimate within (1±ε) of λ(G); error shrinks as c_k grows "
        "(the theory constant is ~6·ln n)."
    )
    return table


def run_e2_simple_sparsify(quick: bool = True, seed: int = 0) -> Table:
    """E2 — Fig. 2 / Thm 3.3: SIMPLE-SPARSIFICATION cut quality vs space."""
    table = Table(
        "E2: SIMPLE-SPARSIFICATION — all cuts within (1±ε), single pass",
        ["workload", "method", "c_k", "k", "edges", "max err", "mean err",
         "cells"],
    )
    workloads = ["er-dense"] if quick else ["er-dense", "planted"]
    sweeps = [0.08, 0.2] if quick else [0.05, 0.12, 0.3, 0.6]
    for wname in workloads:
        wl = make_workload(wname, seed=seed)
        for c_k in sweeps:
            sk = SimpleSparsification(
                wl.graph.n, epsilon=0.5, source=HashSource(seed + 7), c_k=c_k
            ).consume_batch(wl.stream.as_batch())
            sp = sk.sparsifier()
            rep = cut_approximation_report(wl.graph, sp, sample_cuts=300, seed=seed)
            table.add_row(
                wl.name, "sketch", c_k, sk.k, sp.num_edges,
                rep.max_relative_error, rep.mean_relative_error,
                sk.memory_cells(),
            )
        # Offline baselines at comparable sampling aggressiveness.
        ksp = karger_sparsify(wl.graph, epsilon=0.5, c=1.0, seed=seed)
        krep = cut_approximation_report(wl.graph, ksp, sample_cuts=300, seed=seed)
        table.add_row(
            wl.name, "karger(offline)", "-", "-", ksp.num_edges,
            krep.max_relative_error, krep.mean_relative_error, 0,
        )
        fsp = fung_sparsify(wl.graph, epsilon=0.5, c=2.0, seed=seed)
        frep = cut_approximation_report(wl.graph, fsp, sample_cuts=300, seed=seed)
        table.add_row(
            wl.name, "fung(offline)", "-", "-", fsp.num_edges,
            frep.max_relative_error, frep.mean_relative_error, 0,
        )
    table.add_note(
        "Claim: cut error decreases as the witness parameter k grows; the "
        "consistent-hash emulation tracks the independent-sampling baselines."
    )
    return table


def run_e3_better_sparsify(quick: bool = True, seed: int = 0) -> Table:
    """E3 — Fig. 3 / Thm 3.4: SPARSIFICATION matches E2 in less space."""
    table = Table(
        "E3: SPARSIFICATION — Gomory-Hu + k-RECOVERY; quality at lower space",
        ["workload", "method", "edges", "max err", "mean err", "cells",
         "recovery fails", "escalations"],
    )
    workloads = ["er-dense"] if quick else ["er-dense", "planted"]
    for wname in workloads:
        wl = make_workload(wname, seed=seed)
        simple = SimpleSparsification(
            wl.graph.n, epsilon=0.5, source=HashSource(seed + 3), c_k=0.2
        ).consume_batch(wl.stream.as_batch())
        ssp = simple.sparsifier()
        srep = cut_approximation_report(wl.graph, ssp, sample_cuts=300, seed=seed)
        table.add_row(
            wl.name, "simple (Fig.2)", ssp.num_edges, srep.max_relative_error,
            srep.mean_relative_error, simple.memory_cells(), "-", "-",
        )
        better = Sparsification(
            wl.graph.n, epsilon=0.5, source=HashSource(seed + 4),
            c_k=0.3, c_rough=0.05, c_level=4.0,
        ).consume_batch(wl.stream.as_batch())
        bsp = better.sparsifier()
        brep = cut_approximation_report(wl.graph, bsp, sample_cuts=300, seed=seed)
        table.add_row(
            wl.name, "better (Fig.3)", bsp.num_edges, brep.max_relative_error,
            brep.mean_relative_error, better.memory_cells(),
            better.diagnostics.recoveries_failed,
            better.diagnostics.level_escalations,
        )
    table.add_note(
        "Claim: the Fig. 3 construction achieves comparable cut quality with "
        "fewer sketch cells (O(ε⁻²·log⁴) vs O(ε⁻²·log⁵) per node)."
    )
    return table


def run_e4_weighted(quick: bool = True, seed: int = 0) -> Table:
    """E4 — §3.5 / Thm 3.8: weighted graphs via dyadic weight classes."""
    table = Table(
        "E4: weighted sparsification — dyadic classes [2^j, 2^{j+1})",
        ["workload", "max W", "classes", "c_k", "edges", "max err",
         "mean err", "cells"],
    )
    sweeps = [0.3] if quick else [0.15, 0.3, 0.6]
    wl = make_workload("weighted", seed=seed)
    max_w = int(max(w for _, _, w in wl.graph.weighted_edges()))
    for c_k in sweeps:
        sk = WeightedSparsification(
            wl.graph.n, max_weight=16, epsilon=0.5,
            source=HashSource(seed + 11), c_k=c_k,
        ).consume_batch(wl.stream.as_batch())
        sp = sk.sparsifier()
        rep = cut_approximation_report(wl.graph, sp, sample_cuts=300, seed=seed)
        table.add_row(
            wl.name, max_w, sk.num_classes, c_k, sp.num_edges,
            rep.max_relative_error, rep.mean_relative_error, sk.memory_cells(),
        )
    table.add_note(
        "Claim: per-class sparsifiers merge into an ε-sparsifier of the "
        "weighted graph (weights carried as multiplicities, tokens atomic)."
    )
    return table


def run_e5_subgraphs(quick: bool = True, seed: int = 0) -> Table:
    """E5 — §4 / Thm 4.1: γ_H to additive ε with O(ε⁻²) ℓ₀ samplers."""
    table = Table(
        "E5: induced subgraphs — γ_H additive error vs sampler budget",
        ["workload", "pattern", "samplers", "exact γ", "estimate",
         "add.err", "fails", "cells"],
    )
    wl = make_workload("triangles", seed=seed)
    budgets = [32, 128] if quick else [32, 64, 128, 256]
    patterns = [TRIANGLE, PATH_3]
    for s in budgets:
        sketch = SubgraphSketch(
            wl.graph.n, order=3, samplers=s, source=HashSource(seed + 21)
        ).consume_batch(wl.stream.as_batch())
        for pattern in patterns:
            est = sketch.estimate(pattern)
            exact = gamma_exact(wl.graph, encoding_class(pattern), 3)
            table.add_row(
                wl.name, pattern.name, s, exact, est.gamma,
                abs(est.gamma - exact), est.samples_failed,
                sketch.memory_cells(),
            )
    # Insert-only baseline on the de-churned stream (it cannot take churn).
    insert_only = stream_from_edges(wl.graph.n, list(wl.graph.edges()), 3)
    buriol = BuriolTriangleEstimator(
        wl.graph.n, samplers=1024 if quick else 4096, seed=seed
    ).consume(insert_only)
    best = buriol.estimate()
    true_t = triangle_count(wl.graph)
    table.add_row(
        wl.name + " [insert-only]", "triangle-count(Buriol)", best.samplers,
        true_t, best.triangles, relative_error(best.triangles, true_t),
        0, 0,
    )
    table.add_note(
        "Claim: additive error decays ~1/√samplers; the sketch matches the "
        "insert-only baseline's budget while also surviving deletions."
    )
    return table


def run_e6_spanner_bs(quick: bool = True, seed: int = 0) -> Table:
    """E6 — §5: k-adaptive Baswana–Sen emulation, stretch ≤ 2k−1."""
    table = Table(
        "E6: Baswana-Sen emulation — (2k-1)-spanner in k adaptive batches",
        ["workload", "method", "k", "batches", "edges", "max stretch",
         "bound", "ok", "cells"],
    )
    workloads = ["grid"] if quick else ["grid", "grid-large", "er-sparse"]
    ks = [2] if quick else [2, 3, 4]
    for wname in workloads:
        wl = make_workload(wname, seed=seed)
        for k in ks:
            rep = BaswanaSenSpanner(
                wl.graph.n, k=k, source=HashSource(seed + 31)
            ).build(wl.stream)
            sr = measure_stretch(wl.graph, rep.spanner)
            table.add_row(
                wl.name, "sketch", k, rep.batches, rep.edges, sr.max_stretch,
                rep.stretch_bound, sr.satisfies(rep.stretch_bound),
                rep.memory_cells,
            )
            off = baswana_sen_offline(wl.graph, k=k, seed=seed)
            sro = measure_stretch(wl.graph, off)
            table.add_row(
                wl.name, "offline [7]", k, "-", off.num_edges(),
                sro.max_stretch, 2 * k - 1, sro.satisfies(2 * k - 1), 0,
            )
    table.add_note(
        "Claim: stretch ≤ 2k−1 with Õ(n^{1+1/k}) measurements over k batches; "
        "matches the offline construction's size up to sketch overhead."
    )
    return table


def run_e7_spanner_recurse(quick: bool = True, seed: int = 0) -> Table:
    """E7 — Thm 5.1: RECURSECONNECT, stretch ≤ k^{log₂5}−1 in log k batches."""
    table = Table(
        "E7: RECURSECONNECT — contraction spanner, log k adaptive batches",
        ["workload", "k", "batches", "log2(k)+1", "edges", "max stretch",
         "bound", "ok", "contraction", "cells"],
    )
    workloads = ["grid"] if quick else ["grid", "grid-large", "er-sparse"]
    ks = [4] if quick else [2, 4, 8]
    for wname in workloads:
        wl = make_workload(wname, seed=seed)
        for k in ks:
            spanner = RecurseConnectSpanner(
                wl.graph.n, k=k, source=HashSource(seed + 41)
            )
            rep = spanner.build(wl.stream)
            sr = measure_stretch(wl.graph, rep.spanner)
            table.add_row(
                wl.name, k, rep.batches, math.ceil(math.log2(k)) + 1,
                rep.edges, sr.max_stretch, round(rep.stretch_bound, 1),
                sr.satisfies(rep.stretch_bound),
                "→".join(str(x) for x in spanner.contraction_trajectory),
                rep.memory_cells,
            )
    table.add_note(
        "Claim: adaptivity drops from k to ~log₂k batches while stretch "
        "stays under k^{log₂5}−1; supernode counts fall doubly exponentially."
    )
    return table


def run_e8_primitives(quick: bool = True, seed: int = 0) -> Table:
    """E8 — §2.3/§3.4 primitives: ℓ₀ sampling, k-RECOVERY, hash backends."""
    table = Table(
        "E8: primitives — sampler uniformity/FAIL, recovery boundary, backends",
        ["primitive", "configuration", "metric", "value"],
    )
    src = HashSource(seed + 51)
    domain = 4096
    support = [7, 300, 1111, 2048, 4000]
    trials = 200 if quick else 1000

    # (a) ℓ₀ sampler: uniformity + failure rate over independent seeds.
    counts: Counter[int] = Counter()
    fails = 0
    bank = L0SamplerBank(
        families=trials, samplers=1, domain=domain, source=src.derive(1)
    )
    arr = np.asarray(support, dtype=np.int64)
    ones = np.ones(arr.size, dtype=np.int64)
    zeros = np.zeros(arr.size, dtype=np.int64)
    for f in range(trials):
        bank.update(np.full(arr.size, f, dtype=np.int64), zeros, arr, ones)
    for f in range(trials):
        try:
            i, _v = bank.sample(f, 0)
            counts[i] += 1
        except SamplerFailed:
            fails += 1
    expected = (trials - fails) / len(support)
    chi2 = sum((counts[i] - expected) ** 2 / expected for i in support)
    table.add_row("l0-sampler", f"|support|={len(support)}, trials={trials}",
                  "fail rate", fails / trials)
    table.add_row("l0-sampler", "uniformity", "chi² (df=4, 95%≈9.5)", chi2)

    # (b) k-RECOVERY: success below capacity, honest FAIL above.
    k = 16
    ok_below = 0
    fail_below = 0
    runs = 20 if quick else 100
    rng = np.random.default_rng(seed)
    for r in range(runs):
        sr = SparseRecovery(domain, k=k, source=src.derive(2, r))
        items = rng.choice(domain, size=k, replace=False)
        sr.update_many(items, np.ones(k, dtype=np.int64))
        try:
            if sr.decode() == {int(i): 1 for i in items}:
                ok_below += 1
        except RecoveryFailed:
            fail_below += 1
    fail_above = 0
    for r in range(runs):
        sr = SparseRecovery(domain, k=k, source=src.derive(3, r))
        items = rng.choice(domain, size=4 * k, replace=False)
        sr.update_many(items, np.ones(4 * k, dtype=np.int64))
        try:
            sr.decode()
        except RecoveryFailed:
            fail_above += 1
    table.add_row("k-recovery", f"k={k}, support=k", "exact-decode rate",
                  ok_below / runs)
    table.add_row("k-recovery", f"k={k}, support=k", "FAIL rate (δ)",
                  fail_below / runs)
    table.add_row("k-recovery", f"k={k}, support=4k", "honest-FAIL rate",
                  fail_above / runs)

    # (c) Hash backends driving the same scalar sampler.
    for name, backend in (
        ("splitmix-oracle", src.derive(4)),
        ("4-wise polynomial", KWiseHash(4, src.derive(5))),
        ("nisan-prg", NisanPRG(18, src.derive(6))),
    ):
        sampler = L0Sampler(domain, _as_source(backend, src.derive(7)))
        for i in support:
            sampler.update(i, 1)
        try:
            item, _v = sampler.sample()
            outcome = f"sampled {item} ∈ support" if item in support else "WRONG"
        except SamplerFailed:
            outcome = "FAIL"
        table.add_row("l0-sampler backend", name, "outcome", outcome)

    # (d) Columnar ingestion: shared StreamBatch vs per-token updates.
    wl = make_workload("er-small", seed=seed)
    sketch_batched = EdgeConnectivitySketch(wl.graph.n, 4, src.derive(8))
    t0 = time.perf_counter()
    sketch_batched.consume_batch(wl.stream.as_batch())
    batched_s = time.perf_counter() - t0
    sketch_token = EdgeConnectivitySketch(wl.graph.n, 4, src.derive(8))
    t0 = time.perf_counter()
    for upd in wl.stream:
        sketch_token.update(upd)
    token_s = time.perf_counter() - t0
    table.add_row(
        "columnar ingest", f"k-edgeconnect, {len(wl.stream)} tokens",
        "tokens/s (batched)", len(wl.stream) / max(batched_s, 1e-9),
    )
    table.add_row(
        "columnar ingest", "batched vs per-token update",
        "speedup ×", token_s / max(batched_s, 1e-9),
    )

    table.add_note(
        "Claims: Thm 2.1 (δ-error uniform ℓ₀ samples), Thm 2.2 (exact "
        "k-sparse recovery with honest FAIL), §3.4 (PRG-driven hashing "
        "works); ingest rows track the shared-StreamBatch consume path."
    )
    return table


def _as_source(backend, fallback: HashSource):
    """Adapt a hash backend into the HashSource protocol L0Sampler needs."""
    if isinstance(backend, HashSource):
        return backend

    class _Adaptor:
        def derive(self, *labels):
            return self  # single backend reused across roles

        def levels(self, x, max_level):
            return backend.levels(x, max_level)

        def bucket(self, x, buckets):
            return backend.bucket(x, buckets)

        def hash64(self, x):
            return backend.hash64(x)

        @property
        def seed(self):
            return fallback.seed

    return _Adaptor()


def run_e9_model(quick: bool = True, seed: int = 0) -> Table:
    """E9 — §1.1 model claims: churn cancellation, mergeability, throughput."""
    table = Table(
        "E9: model-level claims — deletions cancel, sketches merge, throughput",
        ["claim", "configuration", "metric", "value"],
    )
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n

    # (a) Deletion cancellation: sketch(churn stream) == sketch(clean stream).
    clean = stream_from_edges(n, list(wl.graph.edges()))
    sk_churn = SpanningForestSketch(n, HashSource(seed + 61)).consume_batch(wl.stream.as_batch())
    sk_clean = SpanningForestSketch(n, HashSource(seed + 61)).consume_batch(clean.as_batch())
    identical = (
        (sk_churn.bank.bank.phi == sk_clean.bank.bank.phi).all()
        and (sk_churn.bank.bank.iota == sk_clean.bank.bank.iota).all()
        and (sk_churn.bank.bank.fp1 == sk_clean.bank.bank.fp1).all()
        and (sk_churn.bank.bank.fp2 == sk_clean.bank.bank.fp2).all()
    )
    table.add_row("deletions cancel", f"{len(wl.stream)} tokens vs "
                  f"{len(clean)} clean", "sketches bit-identical", identical)

    # (b) Distributed merge: sum of per-site sketches == single-stream sketch.
    sites = 4
    parts = wl.stream.partition(sites, seed=seed)
    merged = SpanningForestSketch(n, HashSource(seed + 61))
    for part in parts:
        site_sketch = SpanningForestSketch(n, HashSource(seed + 61)).consume_batch(part.as_batch())
        merged.merge(site_sketch)
    same = (merged.bank.bank.phi == sk_churn.bank.bank.phi).all()
    forest_ok = len(merged.spanning_forest()) == len(
        spanning_forest(wl.graph)
    )
    table.add_row("distributed merge", f"{sites} sites", "merged == direct", bool(same))
    table.add_row("distributed merge", f"{sites} sites",
                  "forest size correct", forest_ok)

    # (c) Throughput: tokens/second into a spanning-forest sketch.
    reps = 1 if quick else 3
    rates = []
    for r in range(reps):
        sk = SpanningForestSketch(n, HashSource(seed + 70 + r))
        t0 = time.perf_counter()
        sk.consume_batch(wl.stream.as_batch())
        dt = time.perf_counter() - t0
        rates.append(len(wl.stream) / dt)
    table.add_row("throughput", f"forest sketch, n={n}",
                  "tokens/sec (median)", summarize(rates).median)
    table.add_note(
        "Claims: linearity gives dynamic and distributed processing for free "
        "(Section 1.1); identical seeds ⇒ bit-identical mergeable sketches."
    )
    return table



def run_e10_companion(quick: bool = True, seed: int = 0) -> Table:
    """E10 — §1.2 companion features: bipartiteness, k-conn, MST, cut queries."""
    from ..core import (
        BipartitenessSketch,
        CutEdgesSketch,
        MSTWeightSketch,
        is_k_connected_sketch,
    )
    from ..graphs import UnionFind
    from ..streams import (
        cycle_graph,
        dumbbell_graph,
        random_weighted_edges,
        stream_from_edges,
        weighted_churn_stream,
    )

    table = Table(
        "E10: companion sketches (§1.2 / [4]) — bipartite, k-conn, MST, cuts",
        ["sketch", "workload", "metric", "sketch answer", "exact", "cells"],
    )
    src = HashSource(seed + 91)

    # Bipartiteness: even vs odd cycle.
    for nodes, expect in ((12, True), (13, False)):
        st = stream_from_edges(nodes, cycle_graph(nodes))
        sk = BipartitenessSketch(nodes, src.derive(1, nodes)).consume_batch(st.as_batch())
        table.add_row(
            "bipartiteness", f"cycle({nodes})", "is bipartite",
            sk.is_bipartite(), expect, sk.memory_cells(),
        )

    # k-edge-connectivity at the dumbbell boundary.
    clique, bridges = 7, 3
    n = 2 * clique
    st = stream_from_edges(n, dumbbell_graph(clique, bridges))
    for k, expect in ((bridges, True), (bridges + 1, False)):
        ans = is_k_connected_sketch(n, k, st, src.derive(2, k))
        table.add_row(
            "k-edge-connectivity", f"dumbbell({clique},{bridges})",
            f"is {k}-connected", ans, expect, 0,
        )

    # MST weight, exact thresholds and geometric ladder.
    n = 16
    wedges = random_weighted_edges(n, 0.45, 8, seed=seed + 3)
    stw = weighted_churn_stream(n, wedges, seed=seed + 4)
    uf = UnionFind(n)
    truth = 0.0
    for u, v, w in sorted(wedges, key=lambda e: e[2]):
        if uf.union(u, v):
            truth += w
    exact_sk = MSTWeightSketch(n, max_weight=8, source=src.derive(3)).consume_batch(stw.as_batch())
    table.add_row("mst weight", f"weighted er(n={n})", "exact thresholds",
                  exact_sk.estimate(), truth, exact_sk.memory_cells())
    geo_sk = MSTWeightSketch(
        n, max_weight=8, epsilon=0.5, source=src.derive(4)
    ).consume_batch(stw.as_batch())
    table.add_row("mst weight", f"weighted er(n={n})", "(1+0.5) ladder",
                  geo_sk.estimate(), truth, geo_sk.memory_cells())

    # Cut-edge queries on the dumbbell bar.
    st = stream_from_edges(2 * clique, dumbbell_graph(clique, bridges))
    cq = CutEdgesSketch(2 * clique, k=8, source=src.derive(5)).consume_batch(st.as_batch())
    crossing = cq.crossing_edges(set(range(clique)))
    table.add_row("cut queries", f"dumbbell({clique},{bridges})",
                  "bar edges listed", len(crossing), bridges,
                  cq.memory_cells())
    table.add_note(
        "Claims (§1.2, citing [4]): the same linear measurements answer "
        "bipartiteness, k-connectivity, MST weight and cut listings."
    )
    return table


def run_e11_distributed(quick: bool = True, seed: int = 0) -> Table:
    """E11 — §1.1 sharded sketching: bytes-shipped per site vs stream length.

    The communication claim of the distributed-stream model: each site
    ships its *sketch*, whose size depends on ``n`` but **not** on how
    many tokens the site consumed — so as the stream grows, the
    per-site payload stays flat while shipping the raw sub-stream
    grows linearly.  Each row also re-verifies shard-count invariance
    (coordinator answers == single-site answers) on the fly.
    """
    from ..api import GraphSketchEngine, SketchSpec
    from ..sketch import dump_sketch

    table = Table(
        "E11: sharded sketching — per-site communication vs stream length",
        ["workload", "sketch", "sites", "tokens", "stream B/site",
         "sketch B/site", "ratio", "merged==direct"],
    )
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    edges = list(wl.graph.edges())
    sites = 4
    cycles = [0, 1, 3] if quick else [0, 1, 3, 7]
    specs = [("forest", SketchSpec.of("spanning_forest", n, seed=seed + 80))]
    if not quick:
        specs.append(
            ("mincut", SketchSpec.of("mincut", n, seed=seed + 81, c_k=0.5)),
        )
    for extra_cycles in cycles:
        # Same final graph, ever-longer stream: append full
        # delete-everything / re-insert-everything churn cycles.
        stream = stream_from_edges(n, edges)
        for _cycle in range(extra_cycles):
            for u, v in edges:
                stream.delete(u, v)
            for u, v in edges:
                stream.insert(u, v)
        for sk_name, spec in specs:
            engine = (GraphSketchEngine.for_spec(spec)
                      .sharded(sites=sites, strategy="hash-edge", seed=seed)
                      .ingest(stream))
            report = engine.last_report
            direct = spec.build().consume_batch(stream.as_batch())
            identical = engine.snapshot() == dump_sketch(direct)
            stream_bytes_per_site = 24 * len(stream) // sites
            table.add_row(
                wl.name, sk_name, sites, len(stream),
                stream_bytes_per_site, report.max_payload_bytes,
                round(report.max_payload_bytes / stream_bytes_per_site, 2),
                bool(identical),
            )
    table.add_note(
        "Claim (§1.1): per-site communication is the sketch size — flat in "
        "the stream length — while raw-stream shipping grows linearly; the "
        "merged sketch is bit-identical to a single-site sketch."
    )
    return table


def run_e12_temporal(quick: bool = True, seed: int = 0) -> Table:
    """E12 — temporal checkpoints: window accuracy and bytes vs granularity.

    The temporal claim: sealing cumulative checkpoints at epoch
    boundaries lets any epoch-aligned window be materialised by *sketch
    subtraction* — exactly (byte-identical to consuming only the
    window's tokens), at a storage cost linear in the number of epochs
    and a query cost independent of the window's token span.  Each row
    answers a window from checkpoints, compares with the exact answer
    recomputed from the window's token aggregate, and re-verifies the
    subtraction == replay identity on the fly.
    """
    from collections import Counter

    from ..api import (
        ConnectivityQuery,
        GraphSketchEngine,
        MinCutQuery,
        SketchSpec,
    )
    from ..graphs import Graph
    from ..sketch import dump_sketch
    from ..temporal import materialise_window

    table = Table(
        "E12: temporal sketching — epoch checkpoints and window queries",
        ["workload", "sketch", "epochs", "window", "win tokens",
         "answer", "exact", "manifest B", "B/epoch", "sub==replay"],
    )
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    stream = wl.stream
    tokens = list(stream)
    grids = [4, 8] if quick else [2, 4, 8, 16]
    sketches = [
        ("forest", SketchSpec.of("spanning_forest", n, seed=seed + 120)),
        ("mincut", SketchSpec.of("mincut", n, seed=seed + 121, c_k=0.5)),
    ]
    for epochs in grids:
        for sk_name, spec in sketches:
            engine = (GraphSketchEngine.for_spec(spec)
                      .epochs(count=epochs)
                      .ingest(stream))
            timeline = engine.timeline
            manifest_bytes = len(engine.snapshot())
            # Prefix window [0, E) — the full graph — plus the suffix
            # window [E/2, E), whose tokens alone define a *net* graph.
            for t1, t2 in ((0, epochs), (epochs // 2, epochs)):
                b1 = timeline.boundaries[t1 - 1] if t1 else 0
                b2 = timeline.boundaries[t2 - 1]
                window = materialise_window(timeline, t1, t2)
                replay = spec.build()
                replay.consume_batch(stream.as_batch().slice(b1, b2))
                identical = dump_sketch(window) == dump_sketch(replay)
                agg: Counter = Counter()
                for upd in tokens[b1:b2]:
                    agg[upd.key] += upd.delta
                support = Graph.from_edges(
                    n, [e for e, m in agg.items() if m != 0]
                )
                if sk_name == "forest":
                    answer = engine.query(
                        ConnectivityQuery(window=(t1, t2))
                    ).components
                    exact = len(_component_sizes(support))
                else:
                    answer = engine.query(MinCutQuery(window=(t1, t2))).value
                    exact = global_min_cut_value(support)
                table.add_row(
                    wl.name, sk_name, epochs, f"[{t1},{t2})", b2 - b1,
                    answer, exact, manifest_bytes,
                    manifest_bytes // epochs, bool(identical),
                )
    table.add_note(
        "Claim: checkpoint subtraction reproduces the window sketch exactly "
        "(sub==replay always True); storage grows with epoch count while "
        "each window query stays two checkpoint loads."
    )
    return table


def _component_sizes(graph) -> list[int]:
    """Sizes of the connected components of an exact graph."""
    from ..graphs import UnionFind

    uf = UnionFind(graph.n)
    for u, v in graph.edges():
        uf.union(u, v)
    return [len(members) for members in uf.groups().values()]


#: Registry: experiment id → (description, runner).
EXPERIMENTS = {
    "e1": ("MINCUT (Fig.1, Thm 3.2/3.6)", run_e1_mincut),
    "e2": ("SIMPLE-SPARSIFICATION (Fig.2, Thm 3.3)", run_e2_simple_sparsify),
    "e3": ("SPARSIFICATION (Fig.3, Thm 3.4/3.7)", run_e3_better_sparsify),
    "e4": ("Weighted sparsification (§3.5, Thm 3.8)", run_e4_weighted),
    "e5": ("Induced subgraphs (§4, Thm 4.1)", run_e5_subgraphs),
    "e6": ("Baswana-Sen emulation (§5)", run_e6_spanner_bs),
    "e7": ("RECURSECONNECT (§5.1, Thm 5.1)", run_e7_spanner_recurse),
    "e8": ("Sketch primitives (§2.3, §3.4)", run_e8_primitives),
    "e9": ("Stream-model claims (§1.1)", run_e9_model),
    "e10": ("Companion sketches (§1.2 / [4])", run_e10_companion),
    "e11": ("Sharded multi-site sketching (§1.1)", run_e11_distributed),
    "e12": ("Temporal epoch checkpoints & window queries", run_e12_temporal),
}


def run_experiment(exp_id: str, quick: bool = True, seed: int = 0) -> Table:
    """Run an experiment by id (``e1`` … ``e9``)."""
    try:
        _desc, runner = EXPERIMENTS[exp_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick, seed=seed)
