"""Shared metric helpers for the experiment harness."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

__all__ = ["relative_error", "RunSummary", "summarize"]


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth``; infinity when truth is 0 but not est."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Mean/max/median summary over repeated randomised runs."""

    mean: float
    median: float
    maximum: float
    runs: int


def summarize(values: list[float]) -> RunSummary:
    """Summarise repeated-run measurements."""
    if not values:
        raise ValueError("cannot summarise zero runs")
    return RunSummary(
        mean=statistics.fmean(values),
        median=statistics.median(values),
        maximum=max(values),
        runs=len(values),
    )
