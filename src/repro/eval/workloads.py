"""Named workloads used across the experiments.

Each builder returns ``(graph, stream)``: the ground-truth final graph
and a dynamic stream (with deletions) whose final state is that graph.
Scales are kept laptop-sized; the structural features are chosen per
experiment (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import graph_from_stream
from ..graphs import Graph
from ..streams import (
    DynamicGraphStream,
    churn_stream,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    planted_partition_graph,
    random_weighted_edges,
    triangle_planted_graph,
    weighted_churn_stream,
)

__all__ = ["Workload", "make_workload", "WORKLOADS"]


@dataclass(frozen=True, slots=True)
class Workload:
    """A named (graph, stream) pair with provenance."""

    name: str
    graph: Graph
    stream: DynamicGraphStream


def _er(n: int, p: float, seed: int) -> Workload:
    edges = erdos_renyi_graph(n, p, seed=seed)
    stream = churn_stream(n, edges, seed=seed + 1)
    return Workload(f"er(n={n},p={p})", Graph.from_edges(n, edges), stream)


def _planted(n: int, p_in: float, p_out: float, seed: int) -> Workload:
    edges = planted_partition_graph(n, p_in, p_out, seed=seed)
    stream = churn_stream(n, edges, seed=seed + 1)
    return Workload(
        f"planted(n={n},{p_in}/{p_out})", Graph.from_edges(n, edges), stream
    )


def _dumbbell(clique: int, bridges: int, seed: int) -> Workload:
    edges = dumbbell_graph(clique, bridges)
    n = 2 * clique
    stream = churn_stream(n, edges, seed=seed + 1)
    return Workload(
        f"dumbbell(c={clique},b={bridges})", Graph.from_edges(n, edges), stream
    )


def _grid(rows: int, cols: int, seed: int) -> Workload:
    edges = grid_graph(rows, cols)
    n = rows * cols
    stream = churn_stream(n, edges, seed=seed + 1)
    return Workload(f"grid({rows}x{cols})", Graph.from_edges(n, edges), stream)


def _triangles(n: int, p: float, planted: int, seed: int) -> Workload:
    edges = triangle_planted_graph(n, p, planted, seed=seed)
    stream = churn_stream(n, edges, seed=seed + 1)
    return Workload(
        f"triangles(n={n},planted={planted})", Graph.from_edges(n, edges), stream
    )


def _weighted(n: int, p: float, max_w: int, seed: int) -> Workload:
    wedges = random_weighted_edges(n, p, max_w, seed=seed)
    stream = weighted_churn_stream(n, wedges, seed=seed + 1)
    return Workload(f"weighted(n={n},W={max_w})", graph_from_stream(stream), stream)


#: Registry of workload builders keyed by name.
WORKLOADS = {
    "er-small": lambda seed=0: _er(32, 0.4, seed),
    "er-dense": lambda seed=0: _er(48, 0.8, seed),
    "er-sparse": lambda seed=0: _er(48, 0.15, seed),
    "planted": lambda seed=0: _planted(40, 0.7, 0.1, seed),
    "dumbbell": lambda seed=0: _dumbbell(10, 4, seed),
    "dumbbell-large": lambda seed=0: _dumbbell(16, 6, seed),
    "grid": lambda seed=0: _grid(6, 6, seed),
    "grid-large": lambda seed=0: _grid(8, 8, seed),
    "triangles": lambda seed=0: _triangles(36, 0.12, 6, seed),
    "weighted": lambda seed=0: _weighted(28, 0.4, 12, seed),
}


def make_workload(name: str, seed: int = 0) -> Workload:
    """Instantiate a named workload with the given seed."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return builder(seed=seed)
