"""Graph and stream generators for the experiments.

The paper motivates graph sketching with web graphs, IP-flow graphs and
social networks (Section 1); the experiments (EXPERIMENTS.md) exercise
the algorithms on synthetic families with the structural features each
claim cares about:

* **Erdős–Rényi** — the generic unstructured workload.
* **Planted partition** — two dense communities joined by a thin cut;
  the regime where sparsifier cut errors are most visible.
* **Dumbbell** — two cliques joined by ``t`` parallel paths; the minimum
  cut is exactly ``t``, making MINCUT's output checkable by design.
* **Grid / path / cycle / complete / star / bipartite** — standard
  shapes for spanner stretch and census tests.
* **Triangle-planted** — ER base plus a controllable number of planted
  triangles for the Section 4 estimator.

Each ``*_graph`` function returns an edge list; ``stream_*`` helpers
turn edge lists into dynamic streams, including churn streams where a
fraction of edges is inserted, deleted, and possibly re-inserted —
the insertion+deletion workloads the dynamic model exists for.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamError
from .stream import DynamicGraphStream
from .update import EdgeUpdate

__all__ = [
    "erdos_renyi_graph",
    "planted_partition_graph",
    "dumbbell_graph",
    "grid_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "complete_bipartite_graph",
    "triangle_planted_graph",
    "random_weighted_edges",
    "stream_from_edges",
    "churn_stream",
    "weighted_churn_stream",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> list[tuple[int, int]]:
    """G(n, p): each of the ``C(n, 2)`` edges present with probability p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = _rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    return [(int(u), int(v)) for u, v in zip(iu[mask], iv[mask])]


def planted_partition_graph(
    n: int, p_in: float, p_out: float, seed: int = 0
) -> list[tuple[int, int]]:
    """Two equal communities; within-probability ``p_in``, across ``p_out``.

    With ``p_in >> p_out`` the bisection separating the communities is a
    candidate minimum cut, stressing sparsifier accuracy exactly where
    Theorem 3.1-style sampling must boost low-connectivity edges.
    """
    rng = _rng(seed)
    half = n // 2
    iu, iv = np.triu_indices(n, k=1)
    same = (iu < half) == (iv < half)
    prob = np.where(same, p_in, p_out)
    mask = rng.random(iu.shape[0]) < prob
    return [(int(u), int(v)) for u, v in zip(iu[mask], iv[mask])]


def dumbbell_graph(clique: int, bridges: int) -> list[tuple[int, int]]:
    """Two ``clique``-cliques joined by ``bridges`` disjoint direct edges.

    Nodes ``0..clique-1`` and ``clique..2*clique-1`` form the bells;
    bridge ``t`` joins node ``t`` to node ``clique + t``.  For
    ``bridges < clique - 1`` the global minimum cut is exactly the set
    of bridges, value ``bridges`` — a known ground truth for the MINCUT
    experiment.
    """
    if bridges >= clique - 1:
        raise ValueError("need bridges < clique - 1 for the bar to be the min cut")
    edges: list[tuple[int, int]] = []
    for side in (0, clique):
        for i in range(clique):
            for j in range(i + 1, clique):
                edges.append((side + i, side + j))
    for t in range(bridges):
        edges.append((t, clique + t))
    return edges


def grid_graph(rows: int, cols: int) -> list[tuple[int, int]]:
    """Axis-aligned grid; node ``(r, c)`` is ``r * cols + c``."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return edges


def path_graph(n: int) -> list[tuple[int, int]]:
    """Simple path ``0 - 1 - ... - n-1``."""
    return [(i, i + 1) for i in range(n - 1)]


def cycle_graph(n: int) -> list[tuple[int, int]]:
    """Simple cycle on ``n`` nodes."""
    return path_graph(n) + [(n - 1, 0)]


def complete_graph(n: int) -> list[tuple[int, int]]:
    """Clique ``K_n``."""
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def star_graph(n: int) -> list[tuple[int, int]]:
    """Star with centre 0 and ``n - 1`` leaves."""
    return [(0, i) for i in range(1, n)]


def complete_bipartite_graph(a: int, b: int) -> list[tuple[int, int]]:
    """``K_{a,b}`` with left part ``0..a-1`` and right part ``a..a+b-1``."""
    return [(i, a + j) for i in range(a) for j in range(b)]


def triangle_planted_graph(
    n: int, p: float, triangles: int, seed: int = 0
) -> list[tuple[int, int]]:
    """ER base graph plus ``triangles`` planted vertex-disjoint triangles.

    Ensures the Section 4 estimator sees a controllable signal even in
    sparse base graphs.
    """
    if 3 * triangles > n:
        raise ValueError(f"cannot plant {triangles} disjoint triangles on {n} nodes")
    rng = _rng(seed)
    edges = set(erdos_renyi_graph(n, p, seed=seed))
    order = rng.permutation(n)
    for t in range(triangles):
        a, b, c = sorted(int(order[3 * t + i]) for i in range(3))
        edges.update({(a, b), (a, c), (b, c)})
    return sorted(edges)


def random_weighted_edges(
    n: int, p: float, max_weight: int, seed: int = 0
) -> list[tuple[int, int, int]]:
    """ER edges with integer weights uniform in ``[1, max_weight]``.

    Weighted workloads drive Section 3.5 (weight classes ``[2^j, 2^{j+1})``).
    """
    rng = _rng(seed)
    edges = erdos_renyi_graph(n, p, seed=seed)
    weights = rng.integers(1, max_weight + 1, size=len(edges))
    return [(u, v, int(w)) for (u, v), w in zip(edges, weights)]


def stream_from_edges(
    n: int, edges: list[tuple[int, int]], shuffle_seed: int | None = None
) -> DynamicGraphStream:
    """Insert-only stream for an edge list, optionally shuffled."""
    stream = DynamicGraphStream.from_edges(n, edges)
    if shuffle_seed is not None:
        stream = stream.shuffled(shuffle_seed)
    return stream


def churn_stream(
    n: int,
    edges: list[tuple[int, int]],
    churn_fraction: float = 0.3,
    decoy_fraction: float = 0.3,
    seed: int = 0,
) -> DynamicGraphStream:
    """A dynamic stream whose *final* graph is exactly ``edges``.

    Construction:

    1. insert all real edges;
    2. insert ``decoy_fraction * len(edges)`` decoy edges **not** in the
       final graph;
    3. delete and re-insert ``churn_fraction`` of the real edges
       (exercising cancellation);
    4. delete every decoy.

    Any algorithm correct only on insert-only streams fails loudly here,
    which is the point: the paper's sketches are linear, so the sketch
    of this stream equals the sketch of the plain insert-only stream.
    """
    if not 0.0 <= churn_fraction <= 1.0:
        raise StreamError(f"churn_fraction must be in [0, 1], got {churn_fraction}")
    if not 0.0 <= decoy_fraction <= 2.0:
        raise StreamError(f"decoy_fraction must be in [0, 2], got {decoy_fraction}")
    rng = _rng(seed)
    real = {(min(u, v), max(u, v)) for u, v in edges}
    stream = DynamicGraphStream(n)
    for u, v in sorted(real):
        stream.insert(u, v)

    # Decoys: sample absent pairs.
    want = int(round(decoy_fraction * len(real)))
    decoys: list[tuple[int, int]] = []
    attempts = 0
    while len(decoys) < want and attempts < 50 * (want + 1):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        attempts += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in real or key in decoys:
            continue
        decoys.append(key)
    for u, v in decoys:
        stream.insert(u, v)

    churned = [e for e in sorted(real) if rng.random() < churn_fraction]
    for u, v in churned:
        stream.delete(u, v)
    for u, v in churned:
        stream.insert(u, v)
    for u, v in decoys:
        stream.delete(u, v)
    return stream


def weighted_churn_stream(
    n: int,
    weighted_edges: list[tuple[int, int, int]],
    churn_fraction: float = 0.3,
    seed: int = 0,
) -> DynamicGraphStream:
    """Churny stream whose final multiplicities equal the given weights.

    Weights are carried as multiplicities (Section 3.5 treats a weight-w
    edge as w parallel edges).  Updates are *atomic in the weight*: a
    churned edge is deleted with its full weight and re-inserted with
    the same weight.  Atomicity is what lets a weight-class
    decomposition route each token by ``floor(log2 |delta|)`` — partial
    deltas would scatter one edge across classes.
    """
    rng = _rng(seed)
    stream = DynamicGraphStream(n)
    for u, v, w in weighted_edges:
        if w < 1:
            raise StreamError(f"edge weight must be >= 1, got {w} for ({u}, {v})")
        stream.append(EdgeUpdate(u, v, w))
    for u, v, w in weighted_edges:
        if rng.random() < churn_fraction:
            stream.append(EdgeUpdate(u, v, -w))
            stream.append(EdgeUpdate(u, v, w))
    return stream
