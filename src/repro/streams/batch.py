"""Columnar view of a dynamic graph stream.

Every sketch in this library reduces a stream token to the same three
numbers — the canonical endpoints ``(lo, hi)`` and the signed delta —
plus, almost always, the token's *pair rank* (the coordinate of edge
``{lo, hi}`` in the sketched vector, see :func:`repro.util.pair_rank`).
Re-deriving those from Python :class:`~repro.streams.update.EdgeUpdate`
objects is the single largest ingestion cost once the scatter kernels
are vectorised: ``EdgeConnectivitySketch`` used to re-materialise the
token list once per forest group, and the hierarchy sketches once per
subsampling level.

:class:`StreamBatch` materialises the stream once into four contiguous
``int64`` columns shared by every consumer.  Batches are immutable
(the arrays are marked read-only) so one cached instance can be handed
to any number of sketches, levels, and adaptive-spanner passes without
copies; :meth:`DynamicGraphStream.as_batch` owns the cache and
invalidates it when the stream grows.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import StreamError
from ..util import pair_rank_array

__all__ = ["StreamBatch"]


class StreamBatch:
    """Read-only columnar snapshot of a dynamic graph stream.

    Attributes
    ----------
    n:
        Node universe size of the originating stream.
    lo, hi:
        Canonical endpoints per token (``lo < hi``), ``int64``.
    delta:
        Signed multiplicity change per token, ``int64``.
    ranks:
        Precomputed pair rank ``lo·n − lo(lo+1)/2 + (hi − lo − 1)`` per
        token — the coordinate of the edge in every ``C(n,2)``-domain
        sketch vector.
    """

    __slots__ = ("n", "lo", "hi", "delta", "ranks")

    def __init__(
        self,
        n: int,
        lo: np.ndarray,
        hi: np.ndarray,
        delta: np.ndarray,
        ranks: np.ndarray | None = None,
    ):
        if n < 2:
            raise StreamError(f"node universe must have at least 2 nodes, got {n}")
        self.n = n
        self.lo = self._column(lo)
        self.hi = self._column(hi)
        self.delta = self._column(delta)
        if not (self.lo.size == self.hi.size == self.delta.size):
            raise StreamError("batch columns must have equal length")
        if ranks is None:
            ranks = pair_rank_array(self.lo, self.hi, n)
        self.ranks = self._column(ranks)

    @staticmethod
    def _column(values: np.ndarray) -> np.ndarray:
        col = np.ascontiguousarray(values, dtype=np.int64)
        if col is values or col.base is not None:
            # Never freeze (or alias) a caller-owned buffer.
            col = col.copy()
        col.setflags(write=False)
        return col

    @classmethod
    def _from_owned(
        cls,
        n: int,
        lo: np.ndarray,
        hi: np.ndarray,
        delta: np.ndarray,
        ranks: np.ndarray,
    ) -> "StreamBatch":
        """Internal: wrap just-allocated ``int64`` arrays without copying."""
        batch = cls.__new__(cls)
        batch.n = n
        for name, col in (("lo", lo), ("hi", hi), ("delta", delta),
                          ("ranks", ranks)):
            col.setflags(write=False)
            setattr(batch, name, col)
        return batch

    @classmethod
    def from_updates(cls, n: int, updates: Iterable) -> "StreamBatch":
        """Materialise validated :class:`EdgeUpdate` tokens into columns."""
        if n < 2:
            raise StreamError(f"node universe must have at least 2 nodes, got {n}")
        updates = list(updates)
        m = len(updates)
        lo = np.fromiter((u.lo for u in updates), dtype=np.int64, count=m)
        hi = np.fromiter((u.hi for u in updates), dtype=np.int64, count=m)
        delta = np.fromiter((u.delta for u in updates), dtype=np.int64, count=m)
        return cls._from_owned(n, lo, hi, delta, pair_rank_array(lo, hi, n))

    def __len__(self) -> int:
        return self.lo.size

    def select(self, mask: np.ndarray) -> "StreamBatch":
        """A new batch containing the tokens where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return StreamBatch._from_owned(
            self.n, self.lo[mask], self.hi[mask], self.delta[mask],
            self.ranks[mask],
        )

    def slice(self, start: int, stop: int) -> "StreamBatch":
        """A new batch holding tokens ``[start, stop)`` (chunked feeding).

        The columns are views into this batch's (already read-only)
        arrays — no copies.
        """
        return StreamBatch._from_owned(
            self.n,
            self.lo[start:stop],
            self.hi[start:stop],
            self.delta[start:stop],
            self.ranks[start:stop],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamBatch(n={self.n}, tokens={len(self)})"
