"""Edge updates — the atoms of a dynamic graph stream (Definition 1).

A dynamic graph stream is a sequence of tokens
``a_k ∈ [n] × [n] × {-1, +1}``; the multiplicity of edge ``(i, j)`` is
the number of insertions minus the number of deletions.  We generalise
the delta to arbitrary non-zero integers (a weight-w insertion is w unit
insertions back to back), which the linearity of every sketch supports
for free and which Section 3.5 (weighted graphs) uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StreamError

__all__ = ["EdgeUpdate"]


@dataclass(frozen=True, slots=True)
class EdgeUpdate:
    """A single stream token: ``delta`` copies of edge ``{u, v}``.

    Attributes
    ----------
    u, v:
        Endpoints, ``0 <= u, v < n`` and ``u != v``.  Stored unordered;
        :attr:`lo`/:attr:`hi` give the canonical orientation.
    delta:
        Signed multiplicity change; ``+1`` is the paper's insertion
        token, ``-1`` its deletion token.
    """

    u: int
    v: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise StreamError(f"self-loop update ({self.u}, {self.v}) is not allowed")
        if self.u < 0 or self.v < 0:
            raise StreamError(f"negative node id in update ({self.u}, {self.v})")
        if self.delta == 0:
            raise StreamError("zero-delta update carries no information")

    @property
    def lo(self) -> int:
        """Smaller endpoint (canonical orientation)."""
        return self.u if self.u < self.v else self.v

    @property
    def hi(self) -> int:
        """Larger endpoint (canonical orientation)."""
        return self.v if self.u < self.v else self.u

    @property
    def key(self) -> tuple[int, int]:
        """Canonical unordered edge key ``(lo, hi)``."""
        return (self.lo, self.hi)

    def inverse(self) -> "EdgeUpdate":
        """The update cancelling this one (same edge, negated delta)."""
        return EdgeUpdate(self.u, self.v, -self.delta)

    def validate_universe(self, n: int) -> None:
        """Check both endpoints lie in ``[0, n)``."""
        if self.hi >= n:
            raise StreamError(
                f"update ({self.u}, {self.v}) outside node universe [0, {n})"
            )
