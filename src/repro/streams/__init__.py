"""Dynamic graph stream model (Definition 1) and workload generators."""

from .generators import (
    churn_stream,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    random_weighted_edges,
    star_graph,
    stream_from_edges,
    triangle_planted_graph,
    weighted_churn_stream,
)
from .batch import StreamBatch
from .io import dumps_stream, loads_stream, read_stream, write_stream
from .stream import DynamicGraphStream
from .update import EdgeUpdate

__all__ = [
    "DynamicGraphStream",
    "EdgeUpdate",
    "StreamBatch",
    "dumps_stream",
    "loads_stream",
    "read_stream",
    "write_stream",
    "churn_stream",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "dumbbell_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "planted_partition_graph",
    "random_weighted_edges",
    "star_graph",
    "stream_from_edges",
    "triangle_planted_graph",
    "weighted_churn_stream",
]
