"""Dynamic graph streams and the stream-model operations of Section 1.1.

:class:`DynamicGraphStream` is an explicit, replayable sequence of
:class:`~repro.streams.update.EdgeUpdate` tokens over a node universe
``[0, n)``.  Replayability is how this library models multi-pass /
adaptive-sketch access (Definition 2): each batch of an adaptive scheme
re-consumes the same stream with freshly chosen measurements.

The module also implements the distributed-stream operations the paper
gets for free from linearity: :meth:`DynamicGraphStream.partition`
splits a stream across sites, and sketches of the parts can be merged by
addition (exercised in experiment E9).  :meth:`DynamicGraphStream.
sorted_by_edge` produces the rearranged stream used by the Nisan
derandomisation argument of Section 3.4 — the final sketch is invariant
under the rearrangement, which is what makes the argument work.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from ..errors import StreamError
from ..hashing import HashSource
from .batch import StreamBatch
from .update import EdgeUpdate

__all__ = ["DynamicGraphStream"]


class DynamicGraphStream:
    """A replayable dynamic graph stream over nodes ``[0, n)``.

    Parameters
    ----------
    n:
        Size of the node universe.
    updates:
        Optional initial sequence of updates (validated against ``n``).

    Notes
    -----
    The final multigraph is defined by the *aggregate* multiplicities
    ``A(i, j)`` (Definition 1); the model requires these to be
    non-negative, which :meth:`multiplicities` enforces on demand and
    :meth:`validate` checks for every prefix.
    """

    __slots__ = ("n", "_updates", "_batch")

    def __init__(self, n: int, updates: Iterable[EdgeUpdate] = ()):  # noqa: D107
        if n < 2:
            raise StreamError(f"node universe must have at least 2 nodes, got {n}")
        self.n = n
        self._updates: list[EdgeUpdate] = []
        self._batch: StreamBatch | None = None
        for upd in updates:
            self.append(upd)

    # -- construction ---------------------------------------------------------

    def append(self, update: EdgeUpdate) -> None:
        """Append a validated update token to the stream."""
        update.validate_universe(self.n)
        self._updates.append(update)
        self._batch = None  # the cached columnar view is stale now

    def insert(self, u: int, v: int, copies: int = 1) -> None:
        """Append an insertion of ``copies`` parallel ``{u, v}`` edges."""
        self.append(EdgeUpdate(u, v, copies))

    def delete(self, u: int, v: int, copies: int = 1) -> None:
        """Append a deletion of ``copies`` parallel ``{u, v}`` edges."""
        self.append(EdgeUpdate(u, v, -copies))

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "DynamicGraphStream":
        """Insert-only stream containing each edge of ``edges`` once."""
        stream = cls(n)
        for u, v in edges:
            stream.insert(u, v)
        return stream

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, idx: int) -> EdgeUpdate:
        return self._updates[idx]

    @property
    def updates(self) -> Sequence[EdgeUpdate]:
        """Read-only view of the token sequence."""
        return tuple(self._updates)

    def as_batch(self) -> StreamBatch:
        """Cached columnar view of the stream (shared by all consumers).

        The first call materialises the ``lo``/``hi``/``delta``/``ranks``
        columns; the batch is then reused by every sketch's
        ``consume``/``consume_batch`` — and across the batches of
        adaptive schemes, which replay the same stream — until
        :meth:`append` grows the stream and invalidates the cache.  The
        returned arrays are read-only.
        """
        if self._batch is None:
            self._batch = StreamBatch.from_updates(self.n, self._updates)
        return self._batch

    def multiplicities(self) -> dict[tuple[int, int], int]:
        """Aggregate edge multiplicities ``A(i, j)`` of the final graph.

        Raises :class:`StreamError` if any aggregate is negative (the
        model forbids deleting edges that are not present) and drops
        zero entries.
        """
        agg: Counter[tuple[int, int]] = Counter()
        for upd in self._updates:
            agg[upd.key] += upd.delta
        bad = [(e, m) for e, m in agg.items() if m < 0]
        if bad:
            raise StreamError(f"negative final multiplicity for edges: {bad[:5]}")
        return {e: m for e, m in agg.items() if m != 0}

    def edges(self) -> list[tuple[int, int]]:
        """Edges with non-zero final multiplicity (simple-graph view)."""
        return sorted(self.multiplicities())

    def validate(self) -> None:
        """Check that *every prefix* keeps multiplicities non-negative.

        Stricter than :meth:`multiplicities`: Definition 1 only
        constrains the final aggregate, but well-formed workloads never
        delete an absent edge, and the generators maintain this.
        """
        running: Counter[tuple[int, int]] = Counter()
        for pos, upd in enumerate(self._updates):
            running[upd.key] += upd.delta
            if running[upd.key] < 0:
                raise StreamError(
                    f"prefix multiplicity of {upd.key} negative after token {pos}"
                )

    def final_edge_count(self) -> int:
        """Number of distinct edges in the final graph."""
        return len(self.multiplicities())

    # -- model operations (Section 1.1 / 3.4) ---------------------------------

    def partition(self, sites: int, seed: int = 0) -> list["DynamicGraphStream"]:
        """Split the stream across ``sites`` locations.

        Tokens are routed by a hash of their position, modelling a
        distributed stream: each site sees an arbitrary subsequence, and
        the linearity of sketches guarantees that the sum of per-site
        sketches equals the sketch of the whole stream.
        """
        if sites < 1:
            raise StreamError(f"need at least one site, got {sites}")
        source = HashSource(seed).derive(0xD15C)
        parts = [DynamicGraphStream(self.n) for _ in range(sites)]
        for pos, upd in enumerate(self._updates):
            parts[int(source.bucket(pos, sites))].append(upd)
        return parts

    def interleaved_with(self, other: "DynamicGraphStream", seed: int = 0) -> "DynamicGraphStream":
        """Randomly interleave two streams over the same universe."""
        if other.n != self.n:
            raise StreamError("cannot interleave streams over different universes")
        source = HashSource(seed).derive(0x1EAF)
        merged = DynamicGraphStream(self.n)
        i = j = 0
        pos = 0
        while i < len(self._updates) or j < len(other._updates):
            take_left = j >= len(other._updates) or (
                i < len(self._updates) and bool(source.bernoulli(pos, 0.5))
            )
            if take_left:
                merged.append(self._updates[i])
                i += 1
            else:
                merged.append(other._updates[j])
                j += 1
            pos += 1
        return merged

    def sorted_by_edge(self) -> "DynamicGraphStream":
        """The Section 3.4 rearrangement: group tokens of the same edge.

        Nisan's PRG applies to algorithms reading random bits once; the
        paper's trick is to analyse the algorithm on the stream sorted so
        that all operations on an edge are consecutive, then observe the
        sketch is order-invariant.  This method produces that sorted
        stream so tests can verify the invariance directly.
        """
        order = sorted(range(len(self._updates)), key=lambda i: self._updates[i].key)
        return DynamicGraphStream(self.n, (self._updates[i] for i in order))

    def shuffled(self, seed: int = 0) -> "DynamicGraphStream":
        """A pseudo-random permutation of the token sequence."""
        source = HashSource(seed).derive(0x54FF)
        keyed = sorted(
            range(len(self._updates)), key=lambda i: int(source.hash64(i))
        )
        return DynamicGraphStream(self.n, (self._updates[i] for i in keyed))

    def __add__(self, other: "DynamicGraphStream") -> "DynamicGraphStream":
        """Concatenate two streams over the same universe."""
        if other.n != self.n:
            raise StreamError("cannot concatenate streams over different universes")
        return DynamicGraphStream(self.n, list(self._updates) + list(other._updates))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraphStream(n={self.n}, tokens={len(self._updates)})"
