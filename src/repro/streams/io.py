"""Stream persistence — a plain-text dynamic-graph-stream format.

One header line ``# dynamic-graph-stream n=<N>`` followed by one token
per line: ``<u> <v> <delta>``.  Deletions are negative deltas, exactly
the token alphabet of Definition 1 (generalised to weighted deltas).
Blank lines and ``#`` comments are ignored, so files are diff- and
hand-editable; round-trips are exact.
"""

from __future__ import annotations

import pathlib
from typing import TextIO

from ..errors import StreamError
from .stream import DynamicGraphStream
from .update import EdgeUpdate

__all__ = ["write_stream", "read_stream", "dumps_stream", "loads_stream"]

_HEADER_PREFIX = "# dynamic-graph-stream n="


def dumps_stream(stream: DynamicGraphStream) -> str:
    """Render a stream in the text format."""
    lines = [f"{_HEADER_PREFIX}{stream.n}"]
    lines.extend(f"{u.u} {u.v} {u.delta}" for u in stream)
    return "\n".join(lines) + "\n"


def loads_stream(text: str) -> DynamicGraphStream:
    """Parse a stream from the text format."""
    stream: DynamicGraphStream | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(_HEADER_PREFIX):
            if stream is not None:
                raise StreamError(f"line {lineno}: duplicate header")
            try:
                n = int(line[len(_HEADER_PREFIX):])
            except ValueError as exc:
                raise StreamError(f"line {lineno}: bad header {line!r}") from exc
            stream = DynamicGraphStream(n)
            continue
        if line.startswith("#"):
            continue
        if stream is None:
            raise StreamError(f"line {lineno}: token before header")
        parts = line.split()
        if len(parts) != 3:
            raise StreamError(
                f"line {lineno}: expected '<u> <v> <delta>', got {line!r}"
            )
        try:
            u, v, delta = (int(p) for p in parts)
        except ValueError as exc:
            raise StreamError(f"line {lineno}: non-integer token {line!r}") from exc
        stream.append(EdgeUpdate(u, v, delta))
    if stream is None:
        raise StreamError("no stream header found")
    return stream


def write_stream(stream: DynamicGraphStream, path: str | pathlib.Path | TextIO) -> None:
    """Write a stream to a file path or open text handle."""
    text = dumps_stream(stream)
    if hasattr(path, "write"):
        path.write(text)
    else:
        pathlib.Path(path).write_text(text)


def read_stream(path: str | pathlib.Path | TextIO) -> DynamicGraphStream:
    """Read a stream from a file path or open text handle."""
    if hasattr(path, "read"):
        return loads_stream(path.read())
    return loads_stream(pathlib.Path(path).read_text())
