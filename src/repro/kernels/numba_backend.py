"""Optional ``numba``-compiled backend for the arena vector kernels.

Imported by :mod:`repro.kernels` inside a ``try``; when numba (or a
working JIT toolchain) is missing the import fails, the backend stays
unregistered, and selection falls back to the numpy reference — the
import block at the bottom compiles and runs a tiny warm-up so a broken
toolchain is detected *at import time*, not on the first hot call.

Only the arena fold/negate kernels are overridden here: they are
simple, branch-free int64 loops where a compiled single pass beats the
blocked multi-pass numpy fold, and their byte-exactness is easy to
audit (one Mersenne fold is valid below ``2^32`` and the canonical
``p -> 0`` fix-up matches ``mod_mersenne31``).  All remaining kernels
inherit the reference implementation through the registry; the parity
contract (``docs/KERNELS.md``) is per kernel, not per backend.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from ..hashing import MERSENNE31

__all__ = ["KERNELS"]

_M = MERSENNE31


@njit(cache=True)
def _fold_raw(buffer, other, c2, subtract):
    n = buffer.size
    if subtract:
        for i in range(c2):
            buffer[i] -= other[i]
        for i in range(c2, n):
            f = buffer[i] - other[i] + _M
            f = (f & _M) + (f >> 31)
            if f == _M:
                f = 0
            buffer[i] = f
    else:
        for i in range(c2):
            buffer[i] += other[i]
        for i in range(c2, n):
            f = buffer[i] + other[i]
            f = (f & _M) + (f >> 31)
            if f == _M:
                f = 0
            buffer[i] = f


@njit(cache=True)
def _fold_sparse(buffer, idx, values, split, subtract):
    if subtract:
        for j in range(split):
            buffer[idx[j]] -= values[j]
        for j in range(split, idx.size):
            f = buffer[idx[j]] - values[j] + _M
            f = (f & _M) + (f >> 31)
            if f == _M:
                f = 0
            buffer[idx[j]] = f
    else:
        for j in range(split):
            buffer[idx[j]] += values[j]
        for j in range(split, idx.size):
            f = buffer[idx[j]] + values[j]
            f = (f & _M) + (f >> 31)
            if f == _M:
                f = 0
            buffer[idx[j]] = f


@njit(cache=True)
def _negate(buffer, c2):
    for i in range(c2):
        buffer[i] = -buffer[i]
    for i in range(c2, buffer.size):
        f = _M - buffer[i]
        if f == _M:
            f = 0
        buffer[i] = f


def arena_fold(buffer, other, cells, subtract):
    _fold_raw(buffer, other, 2 * cells, bool(subtract))


def arena_fold_sparse(buffer, cells, idx, values, subtract):
    split = int(np.searchsorted(idx, 2 * cells))
    _fold_sparse(buffer, idx, values, split, bool(subtract))


def arena_negate(buffer, cells):
    _negate(buffer, 2 * cells)


KERNELS: dict = {
    "arena_fold": arena_fold,
    "arena_fold_sparse": arena_fold_sparse,
    "arena_negate": arena_negate,
}

# Import-time warm-up: compile and sanity-check each jitted loop on a
# tiny buffer so a present-but-broken toolchain disables the backend
# instead of failing mid-ingest.
_probe = np.arange(8, dtype=np.int64)
_other = np.ones(8, dtype=np.int64)
_fold_raw(_probe.copy(), _other, 4, False)
_fold_sparse(_probe.copy(), np.array([1, 5], dtype=np.int64),
             np.array([1, 1], dtype=np.int64), 1, True)
_negate(_probe.copy(), 4)
del _probe, _other
