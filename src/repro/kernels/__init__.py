"""Pluggable compiled-kernel backends for the sketch hot loops.

Every numeric hot loop of the sketch layer — the columnar cell scatter,
the whole-bank one-sparse decode, the arena fold/negate vector ops, and
the per-level sparsifier routing — is owned by a named *kernel* in this
package instead of being inlined at its call site.  A kernel is a plain
function; a *backend* is a mapping from kernel names to implementations.

Two backends exist:

* ``numpy`` — the pure-numpy **reference backend**
  (:mod:`repro.kernels.reference`).  Always available; defines the
  byte-exact contract every other backend must reproduce.
* ``numba`` — optional ``njit``-compiled loops
  (:mod:`repro.kernels.numba_backend`), detected at import time.  When
  numba (or a working JIT toolchain) is absent the backend is simply
  unregistered and selection falls back to numpy.  A backend may
  override any subset of kernels; names it does not provide inherit the
  reference implementation.

Selection
---------
The active backend is chosen at import from the ``REPRO_KERNELS``
environment variable (``auto`` | ``numpy`` | ``numba``, default
``auto`` = numba when available else numpy) and can be switched at
runtime with :func:`use` — also reachable through
``GraphSketchEngine.kernels()`` and the CLI ``--kernels`` flag.
Requesting an unavailable backend warns and falls back to numpy rather
than failing: backend choice is a performance knob, never a
correctness knob.

Parity contract
---------------
Backends must be **byte-identical**: for every kernel, all backends
produce exactly the same array contents (including canonical Mersenne
residues — ``p`` is always stored as ``0``).  The hypothesis
equivalence harness (``tests/test_temporal_equivalence.py``) runs once
per available backend to pin this; see ``docs/KERNELS.md``.

Telemetry
---------
Every call through :func:`get` records a per-kernel call count and
wall-clock seconds, keyed by the backend that implemented the call;
:func:`kernel_stats` exposes the counters and ``repro.serve`` renders
them on ``/metrics``.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Any, Callable

from . import reference

__all__ = [
    "KERNEL_NAMES",
    "UNAVAILABLE",
    "available_backends",
    "backend_name",
    "get",
    "kernel_stats",
    "reset_kernel_stats",
    "use",
]

#: Kernel names every backend resolves (via reference fallback if partial).
KERNEL_NAMES: tuple[str, ...] = tuple(sorted(reference.KERNELS))

_BACKENDS: dict[str, dict[str, Callable[..., Any]]] = {
    "numpy": dict(reference.KERNELS),
}
#: For each selectable backend, which backend implements each kernel —
#: partial backends inherit reference kernels, and telemetry attributes
#: those calls to ``numpy``, not to the selected backend.
_IMPLEMENTED_BY: dict[str, dict[str, str]] = {
    "numpy": {name: "numpy" for name in KERNEL_NAMES},
}
#: Import-failure reason per optional backend (diagnostics and tests).
UNAVAILABLE: dict[str, str] = {}

try:
    from . import numba_backend as _numba_backend
except Exception as exc:  # noqa: BLE001 - any import/JIT failure disables it
    UNAVAILABLE["numba"] = f"{type(exc).__name__}: {exc}"
else:  # pragma: no cover - exercised only where numba is installed
    _BACKENDS["numba"] = {**reference.KERNELS, **_numba_backend.KERNELS}
    _IMPLEMENTED_BY["numba"] = {
        name: ("numba" if name in _numba_backend.KERNELS else "numpy")
        for name in KERNEL_NAMES
    }


def available_backends() -> tuple[str, ...]:
    """Names of the backends that imported successfully."""
    return tuple(sorted(_BACKENDS))


def _resolve(requested: str) -> str:
    """Map a requested backend name to an available one (warn on fallback)."""
    requested = (requested or "auto").strip().lower()
    if requested == "auto":
        return "numba" if "numba" in _BACKENDS else "numpy"
    if requested in _BACKENDS:
        return requested
    if requested == "numba":
        warnings.warn(
            "REPRO_KERNELS=numba requested but the numba backend is "
            f"unavailable ({UNAVAILABLE.get('numba', 'not importable')}); "
            "falling back to the numpy reference backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return "numpy"
    warnings.warn(
        f"unknown kernel backend {requested!r} "
        f"(available: {', '.join(available_backends())}); using auto selection",
        RuntimeWarning,
        stacklevel=3,
    )
    return _resolve("auto")


_active_name: str = _resolve(os.environ.get("REPRO_KERNELS", "auto"))


def use(backend: str) -> str:
    """Switch the process-wide active backend; returns the effective name.

    ``backend`` is ``auto``, ``numpy`` or ``numba``.  Unavailable or
    unknown names warn and fall back (see :func:`_resolve`) — outputs
    are byte-identical across backends, so the switch is always safe.
    """
    global _active_name
    _active_name = _resolve(backend)
    return _active_name


def backend_name() -> str:
    """Name of the currently active backend."""
    return _active_name


#: ``(kernel, implementing backend) -> [calls, seconds]``.
_STATS: dict[tuple[str, str], list[float]] = {}


class Kernel:
    """Callable handle for one named kernel.

    Dispatches each call through the *currently* active backend (so a
    cached handle follows :func:`use` switches) and records call-count
    and seconds telemetry against the implementing backend.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    @property
    def backend(self) -> str:
        """Backend that would implement the next call."""
        return _IMPLEMENTED_BY[_active_name][self.name]

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        fn = _BACKENDS[_active_name][self.name]
        key = (self.name, _IMPLEMENTED_BY[_active_name][self.name])
        t0 = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            stat = _STATS.get(key)
            if stat is None:
                _STATS[key] = stat = [0, 0.0]
            stat[0] += 1
            stat[1] += time.perf_counter() - t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, backend={self.backend!r})"


_HANDLES: dict[str, Kernel] = {}


def get(name: str) -> Kernel:
    """The named kernel as a telemetry-recording callable.

    Raises ``KeyError`` for names no backend registers; the handle is
    cached, so call sites may bind it once at import time.
    """
    handle = _HANDLES.get(name)
    if handle is None:
        if name not in reference.KERNELS:
            raise KeyError(
                f"unknown kernel {name!r} (registered: {', '.join(KERNEL_NAMES)})"
            )
        _HANDLES[name] = handle = Kernel(name)
    return handle


def kernel_stats() -> list[dict[str, Any]]:
    """Per-kernel telemetry rows: kernel, backend, calls, seconds."""
    return [
        {"kernel": k, "backend": b, "calls": int(c), "seconds": float(s)}
        for (k, b), (c, s) in sorted(_STATS.items())
    ]


def reset_kernel_stats() -> None:
    """Zero all telemetry counters (benchmark / test isolation)."""
    _STATS.clear()
