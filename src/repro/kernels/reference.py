"""Pure-numpy reference backend — the parity anchor for every kernel.

These implementations define the byte-exact contract of the kernel
registry: any alternative backend must reproduce their outputs bit for
bit (see ``docs/KERNELS.md``).  They are also heavily optimised in
their own right — the reference backend is what the benchmark gates in
``BENCH_ingest.json`` are measured against:

* fingerprint powers ``z^item`` are computed once per **unique** item
  and gathered, instead of once per expanded scatter entry (a forest
  scatter expands every edge ~``4 log n``-fold, so this removes the
  dominant modular-exponentiation cost of ingest);
* scatters use ``np.add.at`` — buffered no longer since numpy 2.0's
  indexed-loop fast path, it folds int64 contributions at memory
  speed with no sort;
* the Mersenne reduction of the fingerprint fields is deferred to one
  pass per kernel call, over the whole bank for large payloads or the
  sorted unique touched cells for small ones.  Both are exact:
  untouched cells already hold canonical residues and the reduction
  is idempotent;
* the forest scatter's ragged level expansion is replaced, for large
  payloads, by one radix sort of the (edge, family) pairs by deepest
  level — each level's participants become a *prefix* of the sorted
  pair arrays, so the per-level value columns are views and only the
  bucket hash is computed per expanded entry.

Exactness arguments used throughout (and relied on by callers):

* int64 addition is associative and commutative, so any regrouping or
  reordering of scatter contributions yields identical cell values;
* ``mod_mersenne31`` is canonical (``p`` maps to ``0``) and idempotent,
  so reducing a cell once at the end of a batch equals reducing it
  after every contribution;
* intermediate fingerprint sums stay below ``2^62`` (each contribution
  is ``< 2^31`` and a scatter block is capped well below ``2^31``
  entries), the validity range of the two-fold reduction.
"""

from __future__ import annotations

import numpy as np

from ..hashing import MERSENNE31
from ..hashing.field import mod_mersenne31, powmod_array

__all__ = ["KERNELS"]

#: Name -> implementation for this backend (complete by definition).
KERNELS: dict = {}


def _kernel(fn):
    KERNELS[fn.__name__] = fn
    return fn


def _unique_inverse(items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(..., return_inverse=True)`` pinned to 1-D semantics."""
    uniq, inv = np.unique(items.ravel(), return_inverse=True)
    return uniq, inv.reshape(items.shape)


def _reduce_fp(fp1: np.ndarray, fp2: np.ndarray, cell_arrays: list) -> None:
    """Canonically reduce fingerprint cells after raw accumulation.

    Every cell named in ``cell_arrays`` holds a sum of canonical
    residues; each contribution is ``< 2^31`` and a scatter call feeds
    well under ``2^31`` entries, so the sums stay below ``2^62`` — the
    validity range of the two-fold reduction.  Large payloads reduce
    the whole bank instead of sorting the touched set: reducing an
    untouched (canonical) cell is the identity, so both paths yield
    identical bytes.
    """
    total = sum(c.size for c in cell_arrays)
    if total * 8 >= fp1.size:
        fp1[:] = mod_mersenne31(fp1)
        fp2[:] = mod_mersenne31(fp2)
        return
    touched = np.unique(
        cell_arrays[0] if len(cell_arrays) == 1 else np.concatenate(cell_arrays)
    )
    fp1[touched] = mod_mersenne31(fp1[touched])
    fp2[touched] = mod_mersenne31(fp2[touched])


def _scatter_add(
    phi: np.ndarray,
    iota: np.ndarray,
    fp1: np.ndarray,
    fp2: np.ndarray,
    cells: np.ndarray,
    vd: np.ndarray,
    vw: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
) -> None:
    """Fold per-entry contributions into the four field arrays.

    Unsorted ``np.add.at`` scatters per field (int64 addition commutes,
    so entry order is immaterial to the bytes), then one deferred
    fingerprint reduction over the touched cells.
    """
    np.add.at(phi, cells, vd)
    np.add.at(iota, cells, vw)
    np.add.at(fp1, cells, v1)
    np.add.at(fp2, cells, v2)
    _reduce_fp(fp1, fp2, [cells])


@_kernel
def scatter_multi(bank, cells_per_row, items, deltas, pre=None):
    """Accumulate ``x[items] += deltas`` into a cell bank via row routings.

    ``bank`` is a :class:`~repro.sketch.bank.CellBank`; every array in
    ``cells_per_row`` routes the same ``(items, deltas)`` payload into
    one hash-table row.  ``pre`` optionally carries a precomputed
    ``(unique_items, inverse)`` pair so callers scattering one payload
    into many identically-shaped banks share the dedup sort.
    """
    items = np.asarray(items, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    if items.size == 0:
        return
    uniq, inv = _unique_inverse(items) if pre is None else pre
    dmod = np.mod(deltas, MERSENNE31)
    c1 = mod_mersenne31(dmod * powmod_array(bank.z1, uniq)[inv])
    c2 = mod_mersenne31(dmod * powmod_array(bank.z2, uniq)[inv])
    weighted = items * deltas
    rows = [np.asarray(c, dtype=np.int64) for c in cells_per_row]
    r = len(rows)
    if r == 1:
        all_cells, vd, vw, v1, v2 = rows[0], deltas, weighted, c1, c2
    else:
        all_cells = np.concatenate(rows)
        vd = np.tile(deltas, r)
        vw = np.tile(weighted, r)
        v1 = np.tile(c1, r)
        v2 = np.tile(c2, r)
    _scatter_add(bank.phi, bank.iota, bank.fp1, bank.fp2, all_cells, vd, vw, v1, v2)


#: Expanded-entry budget below which ``forest_scatter`` uses the
#: ragged per-entry expansion; larger payloads switch to the per-level
#: prefix loop whose fixed cost (a few numpy calls per level and row)
#: only amortises on big batches.
_RAGGED_MAX = 8192


@_kernel
def forest_scatter(bank, lo, hi, deltas, items, pre=None):
    """Fused signed-incidence scatter for a spanning-forest sampler bank.

    ``bank`` is the forest's :class:`~repro.sketch.l0.L0SamplerBank`
    (one family per Borůvka round, one sampler per node).  Each
    canonical edge ``(lo, hi, delta)`` with pair rank ``item``
    contributes ``+delta`` to ``lo``'s sampler and ``-delta`` to
    ``hi``'s in **every** family, expanded over the item's
    participating subsampling levels ``0..top(item, family)`` and
    hashed into one bucket per row — the exact entry multiset of
    ``L0SamplerBank.update`` fed with the per-edge repeat expansion,
    produced without materialising per-entry hash or power
    recomputation:

    * fingerprint powers: once per unique item (both signs derived by
      one extra modular multiply each);
    * level hashes: once per (unique item, family) instead of per
      expanded entry;
    * bucket hashes: once per (edge, family, level) entry, shared by
      the two signed endpoint rows.

    Small payloads expand the ragged level axis directly; large ones
    take :func:`_forest_scatter_levels`, which turns the expansion
    into nested prefixes of one radix sort.  Entry order differs
    between the two, but every contribution is an exact int64 (or
    deferred-canonical) sum, so the resulting bytes are identical.
    """
    items = np.asarray(items, dtype=np.int64)
    if items.size == 0:
        return
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    fam_count = bank.families
    samplers = bank.samplers
    lvl1 = bank.levels + 1
    rows = bank.rows
    buckets = bank.buckets
    uniq, inv = _unique_inverse(items) if pre is None else pre
    # Fingerprint contributions per edge, for both endpoint signs.
    dmod = np.mod(deltas, MERSENNE31)
    ndmod = np.mod(-deltas, MERSENNE31)
    g1 = powmod_array(bank.bank.z1, uniq)[inv]
    g2 = powmod_array(bank.bank.z2, uniq)[inv]
    c1p = mod_mersenne31(dmod * g1)
    c1n = mod_mersenne31(ndmod * g1)
    c2p = mod_mersenne31(dmod * g2)
    c2n = mod_mersenne31(ndmod * g2)
    weighted = items * deltas
    # Deepest participating level per (unique item, family), gathered
    # back to the edge axis.
    fam = np.arange(fam_count, dtype=np.int64)
    top = np.asarray(
        bank._level_source.levels(uniq[:, None] * fam_count + fam[None, :], bank.levels),
        dtype=np.int64,
    )[inv]
    lengths = (top + 1).ravel()
    total = int(lengths.sum())
    if total * rows * 2 > _RAGGED_MAX:
        _forest_scatter_levels(
            bank, lo, hi, deltas, items, weighted, c1p, c1n, c2p, c2n, top, total
        )
        return
    # Ragged expansion over levels 0..top, edge-major with families inner.
    ef = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    e_idx = ef // fam_count
    f_idx = ef - e_idx * fam_count
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    lv = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
    item_e = items[e_idx]
    # Cell addressing: one shared bucket per row for the two signed
    # endpoint samplers of each (edge, family, level) entry.
    base_lo = ((f_idx * samplers + lo[e_idx]) * lvl1 + lv) * rows
    base_hi = ((f_idx * samplers + hi[e_idx]) * lvl1 + lv) * rows
    bkey = ((item_e * fam_count + f_idx) * lvl1 + lv) * rows
    cell_rows = []
    for r in range(rows):
        bucket = np.asarray(
            bank._bucket_source.bucket(bkey + r, buckets), dtype=np.int64
        )
        cell_rows.append((base_lo + r) * buckets + bucket)
        cell_rows.append((base_hi + r) * buckets + bucket)
    all_cells = np.concatenate(cell_rows)
    d_e = deltas[e_idx]
    w_e = weighted[e_idx]
    vd = np.concatenate([d_e, -d_e] * rows)
    vw = np.concatenate([w_e, -w_e] * rows)
    v1 = np.concatenate([c1p[e_idx], c1n[e_idx]] * rows)
    v2 = np.concatenate([c2p[e_idx], c2n[e_idx]] * rows)
    bb = bank.bank
    _scatter_add(bb.phi, bb.iota, bb.fp1, bb.fp2, all_cells, vd, vw, v1, v2)


def _forest_scatter_levels(
    bank, lo, hi, deltas, items, weighted, c1p, c1n, c2p, c2n, top, total
):
    """Large-payload forest scatter: levels as prefixes of one sort.

    The (edge, family) pairs are radix-sorted once by deepest
    participating level, descending.  The pairs reaching level ``lv``
    are then exactly the first ``srv[lv]`` positions, so every
    per-level value column is a zero-copy prefix view and the only
    per-expanded-entry work left is the bucket hash, the cell index
    arithmetic, and the ``np.add.at`` folds.
    """
    fam_count = bank.families
    samplers = bank.samplers
    lvl1 = bank.levels + 1
    rows = bank.rows
    buckets = bank.buckets
    m = items.size
    shape = (m, fam_count)
    # 16-bit keys take numpy's radix-sort path; int64 would comparison-sort.
    key = (bank.levels - top).ravel().astype(np.int16)
    order = np.argsort(key, kind="stable")
    counts = np.bincount(top.ravel(), minlength=lvl1)
    srv = np.cumsum(counts[::-1])[::-1]
    fam = np.arange(fam_count, dtype=np.int64)
    cb = rows * buckets
    sampler_base = fam[None, :] * samplers
    a_lo = ((sampler_base + lo[:, None]) * (lvl1 * cb)).ravel()[order]
    a_hi = ((sampler_base + hi[:, None]) * (lvl1 * cb)).ravel()[order]
    bkey = ((items[:, None] * fam_count + fam[None, :]) * (lvl1 * rows)).ravel()[order]
    sd = np.broadcast_to(deltas[:, None], shape).ravel()[order]
    sw = np.broadcast_to(weighted[:, None], shape).ravel()[order]
    s1p = np.broadcast_to(c1p[:, None], shape).ravel()[order]
    s1n = np.broadcast_to(c1n[:, None], shape).ravel()[order]
    s2p = np.broadcast_to(c2p[:, None], shape).ravel()[order]
    s2n = np.broadcast_to(c2n[:, None], shape).ravel()[order]
    snd = -sd
    snw = -sw
    bb = bank.bank
    phi, iota, fp1, fp2 = bb.phi, bb.iota, bb.fp1, bb.fp2
    bsrc = bank._bucket_source
    dense = total * rows * 2 * 8 >= fp1.size
    touched: list = []
    for lv in range(lvl1):
        n = int(srv[lv])
        if n == 0:
            break
        for r in range(rows):
            bucket = np.asarray(
                bsrc.bucket(bkey[:n] + (lv * rows + r), buckets), dtype=np.int64
            )
            cl = a_lo[:n] + (lv * cb + r * buckets)
            cl += bucket
            ch = a_hi[:n] + (lv * cb + r * buckets)
            ch += bucket
            np.add.at(phi, cl, sd[:n])
            np.add.at(phi, ch, snd[:n])
            np.add.at(iota, cl, sw[:n])
            np.add.at(iota, ch, snw[:n])
            np.add.at(fp1, cl, s1p[:n])
            np.add.at(fp1, ch, s1n[:n])
            np.add.at(fp2, cl, s2p[:n])
            np.add.at(fp2, ch, s2n[:n])
            if not dense:
                touched.append(cl)
                touched.append(ch)
    if dense:
        fp1[:] = mod_mersenne31(fp1)
        fp2[:] = mod_mersenne31(fp2)
    else:
        _reduce_fp(fp1, fp2, touched)


#: Sampler-block gather budget per decode slab — bounds the peak
#: ``members × cells_per_sampler`` gather matrix regardless of how many
#: components one Borůvka round decodes.
_DECODE_SLAB = 1 << 16


@_kernel
def decode_all(bank, family, member_starts, seg_offsets):
    """Batched one-sparse decode over per-component summed samplers.

    ``bank`` is an :class:`~repro.sketch.l0.L0SamplerBank`;
    ``member_starts`` holds the first cell of each member sampler's
    block (components concatenated), ``seg_offsets`` the ``C + 1``
    component boundaries.  For each component the member blocks are
    summed (the AGM supernode trick) and decoded with the same
    deepest-level / hash-tie-break / last-cell selection rule as
    ``L0SamplerBank._sample_from``.

    Returns ``(status, items, values)`` with status ``0`` = decoded,
    ``1`` = zero vector (w.h.p. no support), ``2`` = recovery failure.
    """
    cps = bank._cells_per_sampler
    count = seg_offsets.size - 1
    status = np.full(count, 2, dtype=np.int64)
    items_out = np.zeros(count, dtype=np.int64)
    values_out = np.zeros(count, dtype=np.int64)
    # Slab the component axis so the gather matrix stays bounded.
    per_slab = max(1, _DECODE_SLAB // max(cps, 1))
    first = 0
    while first < count:
        last = first
        members = 0
        while last < count:
            seg = int(seg_offsets[last + 1] - seg_offsets[last])
            if last > first and members + seg > per_slab:
                break
            members += seg
            last += 1
        _decode_slab(
            bank, family,
            member_starts[seg_offsets[first]:seg_offsets[last]],
            seg_offsets[first:last + 1] - seg_offsets[first],
            status[first:last], items_out[first:last], values_out[first:last],
        )
        first = last
    return status, items_out, values_out


def _decode_slab(bank, family, member_starts, seg_offsets, status, items_out,
                 values_out):
    """Decode one bounded slab of components in place."""
    bb = bank.bank
    cps = bank._cells_per_sampler
    idx = member_starts[:, None] + np.arange(cps, dtype=np.int64)[None, :]
    starts = seg_offsets[:-1]
    phi = np.add.reduceat(bb.phi[idx], starts, axis=0)
    iota = np.add.reduceat(bb.iota[idx], starts, axis=0)
    fp1 = mod_mersenne31(np.add.reduceat(bb.fp1[idx], starts, axis=0))
    fp2 = mod_mersenne31(np.add.reduceat(bb.fp2[idx], starts, axis=0))
    # Vectorised 1-sparse test with fingerprint verification (powers
    # shared across the few distinct candidate indices).
    ok = phi != 0
    safe = np.where(ok, phi, 1)
    ok &= np.mod(iota, safe) == 0
    index = np.where(ok, iota // safe, 0)
    ok &= (index >= 0) & (index < bank.domain)
    idxc = np.clip(index, 0, bank.domain - 1)
    uniq, inv = _unique_inverse(idxc)
    phimod = np.mod(phi, MERSENNE31)
    ok &= fp1 == mod_mersenne31(phimod * powmod_array(bb.z1, uniq)[inv])
    ok &= fp2 == mod_mersenne31(phimod * powmod_array(bb.z2, uniq)[inv])
    zero = ~((phi != 0) | (iota != 0) | (fp1 != 0) | (fp2 != 0)).any(axis=1)
    status[zero] = 1
    comp_ids, _cells = np.nonzero(ok)
    if comp_ids.size == 0:
        return
    cand_idx = index[ok]
    cand_val = phi[ok]
    keys = cand_idx * bank.families + family
    cand_lv = np.asarray(bank._level_source.levels(keys, bank.levels), dtype=np.int64)
    tiebreak = np.asarray(bank._level_source.hash64(keys), dtype=np.uint64)
    # Per component: deepest level wins, ties by hash, then by last
    # cell position — exactly ``lexsort((tiebreak, level))[-1]`` of the
    # scalar path, batched via a component-major stable lexsort.
    order = np.lexsort((tiebreak, cand_lv, comp_ids))
    sorted_comps = comp_ids[order]
    present = np.unique(comp_ids)
    win = order[np.searchsorted(sorted_comps, present, side="right") - 1]
    status[present] = 0
    items_out[present] = cand_idx[win]
    values_out[present] = cand_val[win]


#: Elements per arena fold block — 128k int64 = 1 MiB, sized so one
#: block plus its single temporary stays cache-resident while the
#: fold's multiple passes run.
_FOLD_BLOCK = 1 << 17


def _fold_mersenne31_inplace(f: np.ndarray) -> None:
    """Reduce ``f`` (values in ``[0, 2^32)``) mod ``2^31 - 1`` in place.

    One Mersenne fold suffices below ``2^32`` — the range of a sum or
    difference-plus-modulus of two reduced fingerprints — followed by
    the canonical ``p -> 0`` fix-up.  Produces exactly
    :func:`~repro.hashing.field.mod_mersenne31`'s residues with fewer
    passes and a single block-sized temporary.
    """
    tmp = f >> 31
    f &= MERSENNE31
    f += tmp
    f[f == MERSENNE31] = 0


@_kernel
def arena_fold(buffer, other, cells, subtract):
    """Fold a same-layout raw buffer into an arena buffer in place.

    One in-place add/sub over the count half (``phi``/``iota``); a
    blocked in-place modular add/sub over the fingerprint half.
    """
    c2 = 2 * cells
    counts = buffer[:c2]
    fps = buffer[c2:]
    other_fps = other[c2:]
    if subtract:
        counts -= other[:c2]
    else:
        counts += other[:c2]
    for start in range(0, fps.size, _FOLD_BLOCK):
        f = fps[start:start + _FOLD_BLOCK]
        if subtract:
            f -= other_fps[start:start + _FOLD_BLOCK]
            f += MERSENNE31
        else:
            f += other_fps[start:start + _FOLD_BLOCK]
        _fold_mersenne31_inplace(f)


@_kernel
def arena_fold_sparse(buffer, cells, idx, values, subtract):
    """Fold a sparse ``(index, value)`` payload into an arena buffer.

    ``idx`` must be strictly increasing positions into the buffer (so
    indices are unique and fancy assignment is well-defined) and
    fingerprint values already reduced — both validated by the
    serialisation layer.  Cost is ``O(nnz)``, not ``O(cells)``.
    """
    c2 = 2 * cells
    split = int(np.searchsorted(idx, c2))
    if subtract:
        buffer[idx[:split]] -= values[:split]
        folded = buffer[idx[split:]] - values[split:] + MERSENNE31
    else:
        buffer[idx[:split]] += values[:split]
        folded = buffer[idx[split:]] + values[split:]
    _fold_mersenne31_inplace(folded)
    buffer[idx[split:]] = folded


@_kernel
def arena_negate(buffer, cells):
    """In-place negation of an arena buffer (sketch of ``-x``)."""
    c2 = 2 * cells
    counts = buffer[:c2]
    np.negative(counts, out=counts)
    fps = buffer[c2:]
    for start in range(0, fps.size, _FOLD_BLOCK):
        f = fps[start:start + _FOLD_BLOCK]
        np.subtract(MERSENNE31, f, out=f)
        _fold_mersenne31_inplace(f)


@_kernel
def level_route(top, levels):
    """Route batch entries into nested subsampling levels.

    ``top`` holds each entry's deepest surviving level.  Returns
    ``(order, survivors)``: ``order`` sorts entries by ``top``
    descending (stable), so the entries reaching level ``i`` are
    exactly the first ``survivors[i]`` positions of the sorted batch —
    the whole ``G_0 ⊇ G_1 ⊇ ...`` hierarchy becomes nested prefixes of
    one sort instead of one boolean mask + fancy-index copy per level.
    """
    top = np.asarray(top, dtype=np.int64)
    # Levels are O(log n) so the descending key fits int16, which takes
    # numpy's radix-sort path instead of a comparison sort.
    order = np.argsort((levels - top).astype(np.int16), kind="stable")
    counts = np.bincount(top, minlength=levels + 1)
    survivors = np.cumsum(counts[::-1])[::-1]
    return order, survivors
