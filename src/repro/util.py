"""Shared numeric and combinatorial helpers.

Small, dependency-free utilities used across the package: integer bit
tricks, combinatorial ranking/unranking (the *combinatorial number
system* used to index the columns of the induced-subgraph matrix in
Section 4 of the paper), and validation helpers.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ceil_log2",
    "floor_log2",
    "trailing_zeros",
    "comb",
    "pair_count",
    "pair_rank",
    "pair_unrank",
    "pair_rank_array",
    "subset_rank",
    "subset_unrank",
    "check_node",
    "check_probability",
    "stable_unique_pairs",
]


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``.

    ``ceil_log2(1) == 0``.  Raises :class:`ValueError` for ``x <= 0``.
    """
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {x}")
    return (x - 1).bit_length()


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {x}")
    return x.bit_length() - 1


def trailing_zeros(x: int) -> int:
    """Number of trailing zero bits of a positive integer ``x``.

    Used to assign geometric ℓ₀-sampler levels: a uniform 64-bit value
    has ``P(trailing_zeros >= j) = 2^-j``.
    """
    if x <= 0:
        raise ValueError(f"trailing_zeros requires a positive integer, got {x}")
    return (x & -x).bit_length() - 1


def comb(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` (0 when out of range)."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def pair_count(n: int) -> int:
    """Number of unordered node pairs on ``n`` nodes, ``C(n, 2)``.

    This is the dimension of the edge-multiplicity vector ``A`` that all
    graph sketches in the paper are linear measurements of.
    """
    return n * (n - 1) // 2


def pair_rank(u: int, v: int, n: int) -> int:
    """Rank of the unordered pair ``{u, v}`` in the lexicographic order.

    Pairs ``(0,1), (0,2), ..., (0,n-1), (1,2), ...`` are numbered
    ``0, 1, ..., C(n,2)-1``.  The rank serves as the coordinate of edge
    ``{u, v}`` in the sketched vector.
    """
    if u == v:
        raise ValueError(f"self pair ({u}, {v}) has no rank")
    if u > v:
        u, v = v, u
    if u < 0 or v >= n:
        raise ValueError(f"pair ({u}, {v}) outside universe [0, {n})")
    return u * n - u * (u + 1) // 2 + (v - u - 1)


def pair_unrank(r: int, n: int) -> tuple[int, int]:
    """Inverse of :func:`pair_rank`: recover ``(u, v)`` with ``u < v``."""
    total = pair_count(n)
    if not 0 <= r < total:
        raise ValueError(f"pair rank {r} outside [0, {total})")
    # Row u owns ranks [offset(u), offset(u) + n - 1 - u).  Solve the
    # quadratic exactly in integers (float sqrt loses whole rows once
    # 8·total exceeds 2^53), then fix up boundary effects — at most one
    # step each way.
    u = n - 2 - (math.isqrt(8 * (total - 1 - r) + 1) - 1) // 2
    u = max(0, min(u, n - 2))
    while u * n - u * (u + 1) // 2 > r:
        u -= 1
    while (u + 1) * n - (u + 1) * (u + 2) // 2 <= r:
        u += 1
    v = r - (u * n - u * (u + 1) // 2) + u + 1
    return u, v


def pair_rank_array(u: np.ndarray, v: np.ndarray, n: int) -> np.ndarray:
    """Vectorised :func:`pair_rank` for arrays of endpoints.

    ``u`` and ``v`` need not be ordered; they must be elementwise
    distinct.  Returns an int64 array of pair ranks.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)


def subset_rank(subset: Sequence[int], n: int) -> int:
    """Rank of a sorted k-subset of ``[0, n)`` in combinatorial order.

    Uses the combinatorial number system: the rank of a sorted subset
    ``s_0 < s_1 < ... < s_{k-1}`` equals ``sum_i C(s_i, i+1)``.  Section 4
    of the paper indexes the columns of the matrix ``X_G`` by k-subsets;
    this rank is that column index.
    """
    rank = 0
    prev = -1
    for i, s in enumerate(subset):
        if s <= prev:
            raise ValueError(f"subset {subset!r} is not strictly increasing")
        if not 0 <= s < n:
            raise ValueError(f"subset element {s} outside universe [0, {n})")
        rank += math.comb(s, i + 1)
        prev = s
    return rank


def subset_unrank(rank: int, n: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`subset_rank`: the sorted k-subset with ``rank``."""
    total = comb(n, k)
    if not 0 <= rank < total:
        raise ValueError(f"subset rank {rank} outside [0, {total})")
    subset: list[int] = []
    r = rank
    for i in range(k, 0, -1):
        # Largest s with C(s, i) <= r.
        s = i - 1
        while math.comb(s + 1, i) <= r:
            s += 1
        subset.append(s)
        r -= math.comb(s, i)
    subset.reverse()
    return tuple(subset)


def check_node(node: int, n: int) -> None:
    """Validate a node id against the universe ``[0, n)``."""
    if not 0 <= node < n:
        raise ValueError(f"node {node} outside universe [0, {n})")


def check_probability(p: float, name: str = "probability") -> None:
    """Validate that ``p`` lies in ``(0, 1]``."""
    if not 0.0 < p <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {p}")


def stable_unique_pairs(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Deduplicate unordered pairs preserving first-seen order."""
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    for u, v in pairs:
        key = (u, v) if u <= v else (v, u)
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out
