"""repro — graph sketches for dynamic graph streams.

A from-scratch reproduction of

    Kook Jin Ahn, Sudipto Guha, Andrew McGregor.
    *Graph Sketches: Sparsification, Spanners, and Subgraphs.*
    PODS 2012.

The package provides linear sketches of graphs — collections of linear
measurements of the edge-multiplicity vector — supporting single-pass
processing of dynamic graph streams (edge insertions *and* deletions),
mergeable sketches for distributed streams, temporal epoch checkpoints,
and adaptive multi-batch schemes.

**Public API.**  The supported entry point is :mod:`repro.api`,
re-exported here: declare a sketch with :class:`SketchSpec`, deploy it
with the fluent :class:`GraphSketchEngine` builder (local →
``.sharded(sites=K)`` → ``.epochs(...)``, all on the same spec), ingest
with ``ingest``/``ingest_batch``/``seal_epoch``, and ask typed
questions through one ``query()`` dispatch backed by the capability
registry::

    from repro import GraphSketchEngine, SketchSpec, MinCutQuery

    spec = SketchSpec.of("mincut", n=64, seed=7)
    engine = GraphSketchEngine.for_spec(spec).sharded(sites=4).ingest(stream)
    print(engine.query(MinCutQuery()).value)

The sketch classes themselves (:class:`MinCutSketch`,
:class:`SimpleSparsification`, ...) remain importable for direct use
and post-processing; their per-class ``consume`` entry points, the
``sharded_consume`` helper, and direct ``TemporalQueryEngine``
construction are deprecated shims over the engine (see
``docs/MIGRATION.md``).  Substrates — ℓ₀ samplers, k-sparse recovery,
hashing, the dynamic-stream model, and exact graph algorithms — live
in :mod:`repro.sketch`, :mod:`repro.hashing`, :mod:`repro.streams` and
:mod:`repro.graphs`.
"""

from .api import (
    CAPABILITIES,
    CapabilityEntry,
    ConnectivityQuery,
    ConnectivityResult,
    CutQuery,
    CutQueryResult,
    GraphSketchEngine,
    KEdgeConnectivityQuery,
    KEdgeConnectivityResult,
    MinCutQuery,
    MinCutQueryResult,
    PropertiesQuery,
    PropertiesResult,
    Query,
    QueryResult,
    QueryTelemetry,
    SketchSpec,
    SpannerDistanceQuery,
    SpannerDistanceResult,
    SparsifierQuery,
    SparsifierResult,
    SubgraphCountQuery,
    SubgraphCountResult,
    WIRE_VERSION,
    build_sketch,
    capability_entry,
    capability_of,
    kind_of_sketch,
    query_from_dict,
    query_to_dict,
    register_capability,
    registered_kinds,
    result_from_dict,
    result_to_dict,
)
from .core import (
    BaswanaSenSpanner,
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    RecurseConnectSpanner,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from .errors import (
    AdaptivityError,
    EpochStoreError,
    GraphError,
    NotSupportedError,
    RecoveryFailed,
    ReproError,
    SamplerFailed,
    SketchCompatibilityError,
    SketchFailure,
    StoreCorruptionError,
    StreamError,
    WireFormatError,
    error_code_table,
)
from .hashing import HashSource
from .streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from .temporal import EpochStore, RetentionPolicy

__version__ = "1.1.0"

__all__ = [
    # -- engine API (repro.api) -----------------------------------------------
    "CAPABILITIES",
    "CapabilityEntry",
    "ConnectivityQuery",
    "ConnectivityResult",
    "CutQuery",
    "CutQueryResult",
    "GraphSketchEngine",
    "KEdgeConnectivityQuery",
    "KEdgeConnectivityResult",
    "MinCutQuery",
    "MinCutQueryResult",
    "PropertiesQuery",
    "PropertiesResult",
    "Query",
    "QueryResult",
    "QueryTelemetry",
    "SketchSpec",
    "SpannerDistanceQuery",
    "SpannerDistanceResult",
    "SparsifierQuery",
    "SparsifierResult",
    "SubgraphCountQuery",
    "SubgraphCountResult",
    "WIRE_VERSION",
    "build_sketch",
    "capability_entry",
    "capability_of",
    "kind_of_sketch",
    "query_from_dict",
    "query_to_dict",
    "register_capability",
    "registered_kinds",
    "result_from_dict",
    "result_to_dict",
    # -- sketch classes ---------------------------------------------------------
    "BaswanaSenSpanner",
    "BipartitenessSketch",
    "CutEdgesSketch",
    "EdgeConnectivitySketch",
    "MinCutSketch",
    "MSTWeightSketch",
    "RecurseConnectSpanner",
    "SimpleSparsification",
    "Sparsification",
    "SpanningForestSketch",
    "SubgraphSketch",
    "WeightedSparsification",
    # -- durable temporal storage -----------------------------------------------
    "EpochStore",
    "RetentionPolicy",
    # -- exception hierarchy ----------------------------------------------------
    "AdaptivityError",
    "EpochStoreError",
    "GraphError",
    "NotSupportedError",
    "RecoveryFailed",
    "ReproError",
    "SamplerFailed",
    "SketchCompatibilityError",
    "SketchFailure",
    "StoreCorruptionError",
    "StreamError",
    "WireFormatError",
    "error_code_table",
    # -- stream model -----------------------------------------------------------
    "DynamicGraphStream",
    "EdgeUpdate",
    "HashSource",
    "StreamBatch",
    "__version__",
]
