"""repro — graph sketches for dynamic graph streams.

A from-scratch reproduction of

    Kook Jin Ahn, Sudipto Guha, Andrew McGregor.
    *Graph Sketches: Sparsification, Spanners, and Subgraphs.*
    PODS 2012.

The package provides linear sketches of graphs — collections of linear
measurements of the edge-multiplicity vector — supporting single-pass
processing of dynamic graph streams (edge insertions *and* deletions),
mergeable sketches for distributed streams, and adaptive multi-batch
schemes:

* :class:`~repro.core.mincut.MinCutSketch` — (1+ε) minimum cut (Fig. 1);
* :class:`~repro.core.sparsify_simple.SimpleSparsification` — cut
  sparsifier via per-level connectivity witnesses (Fig. 2);
* :class:`~repro.core.sparsify.Sparsification` — the space-efficient
  sparsifier via Gomory–Hu + k-RECOVERY (Fig. 3);
* :class:`~repro.core.weighted.WeightedSparsification` — weighted
  graphs by dyadic weight classes (Section 3.5);
* :class:`~repro.core.subgraph_count.SubgraphSketch` — induced-subgraph
  frequencies γ_H (Section 4);
* :class:`~repro.core.spanner_bs.BaswanaSenSpanner` and
  :class:`~repro.core.spanner_recurse.RecurseConnectSpanner` — adaptive
  spanner constructions (Section 5).

Substrates — ℓ₀ samplers, k-sparse recovery, hashing (including Nisan's
PRG for the Section 3.4 derandomisation), the dynamic-stream model, and
exact graph algorithms used for post-processing and verification — live
in :mod:`repro.sketch`, :mod:`repro.hashing`, :mod:`repro.streams` and
:mod:`repro.graphs`.  See DESIGN.md for the full inventory and
EXPERIMENTS.md for the claim-by-claim reproduction record.
"""

from .core import (
    BaswanaSenSpanner,
    MinCutSketch,
    RecurseConnectSpanner,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from .hashing import HashSource
from .streams import DynamicGraphStream, EdgeUpdate

__version__ = "1.0.0"

__all__ = [
    "BaswanaSenSpanner",
    "DynamicGraphStream",
    "EdgeUpdate",
    "HashSource",
    "MinCutSketch",
    "RecurseConnectSpanner",
    "SimpleSparsification",
    "Sparsification",
    "SpanningForestSketch",
    "SubgraphSketch",
    "WeightedSparsification",
    "__version__",
]
