"""Distributed IP-flow telemetry: merge sketches across collection sites.

The Section 1.1 distributed-streams story.  An ISP observes flows
(edges between IP endpoints) at four collection points; no site sees
the whole traffic, and shipping raw streams to one place is exactly
what sketching avoids.  Because the sketches are linear, each site
summarises its own sub-stream and the coordinator *adds* the four
sketches — the result is bit-identical to sketching the union stream.

With the engine API the whole deployment is one fluent chain:
``GraphSketchEngine.for_spec(spec).sharded(sites=4).ingest(stream)``
partitions, consumes per site through the columnar path, ships
serialised bytes, and merges with parameter/seed verification — and
``query()`` then answers exactly as a local engine would.

Run:  python examples/distributed_telemetry.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import (
    GraphSketchEngine,
    MinCutQuery,
    SketchSpec,
    SparsifierQuery,
)
from repro.core import cut_approximation_report
from repro.graphs import Graph, global_min_cut_value
from repro.streams import churn_stream, planted_partition_graph


def main(quick: bool = False) -> None:
    n = 24 if quick else 40
    sites = 4
    # Global traffic graph: two data-centre regions, thin inter-region links.
    edges = planted_partition_graph(n, p_in=0.6, p_out=0.08, seed=3)
    global_stream = churn_stream(n, edges, churn_fraction=0.4, seed=4)
    print(f"global stream: {len(global_stream)} flow updates "
          f"(with teardowns), {global_stream.final_edge_count()} live flows")

    # One spec per question; the SAME spec would drive a local engine —
    # the seed inside it is what makes every site's measurements compatible.
    cut_engine = (GraphSketchEngine
                  .for_spec(SketchSpec.of("mincut", n, seed=0xD157 + 1))
                  .sharded(sites=sites, strategy="hash-edge")
                  .ingest(global_stream))
    for site in cut_engine.last_report.sites:
        print(f"  site {site.site}: {site.tokens} updates → "
              f"{site.payload_bytes} sketch bytes shipped")
    sparse_engine = (GraphSketchEngine
                     .for_spec(SketchSpec.of(
                         "simple_sparsification", n, seed=0xD157 + 2, c_k=0.3
                     ))
                     .sharded(sites=sites, strategy="hash-edge")
                     .ingest(global_stream))

    # Coordinator-side answers vs centralised ground truth.
    truth_graph = Graph.from_multiplicities(n, global_stream.multiplicities())
    result = cut_engine.query(MinCutQuery())
    print(f"\nweakest cut: merged-sketch={result.value} "
          f"exact={global_min_cut_value(truth_graph)}")

    sparse = sparse_engine.query(SparsifierQuery())
    report = cut_approximation_report(truth_graph, sparse.sparsifier,
                                      sample_cuts=300, seed=1)
    print(f"capacity model: {sparse.edges}/{truth_graph.num_edges()} "
          f"edges kept, max cut error {report.max_relative_error:.3f}")
    total = cut_engine.shipped_bytes + sparse_engine.shipped_bytes
    print(f"\nno raw flow ever left a site — only {total} bytes of "
          "linear sketches did.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="sharded telemetry demo")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI")
    main(quick=parser.parse_args().quick)
