"""Distributed IP-flow telemetry: merge sketches across collection sites.

The Section 1.1 distributed-streams story.  An ISP observes flows
(edges between IP endpoints) at four collection points; no site sees
the whole traffic, and shipping raw streams to one place is exactly
what sketching avoids.  Because the sketches are linear, each site
summarises its own sub-stream and the coordinator *adds* the four
sketches — the result is bit-identical to sketching the union stream.

The coordinator then builds a cut sparsifier of the global flow graph
(capacity planning) and estimates the minimum cut (weakest point of the
network) without any site ever sharing raw flows.

Run:  python examples/distributed_telemetry.py
"""

from __future__ import annotations

from repro import HashSource, MinCutSketch, SimpleSparsification
from repro.core import cut_approximation_report
from repro.graphs import Graph, global_min_cut_value
from repro.streams import churn_stream, planted_partition_graph


def main() -> None:
    n = 40
    # Global traffic graph: two data-centre regions, thin inter-region links.
    edges = planted_partition_graph(n, p_in=0.6, p_out=0.08, seed=3)
    global_stream = churn_stream(n, edges, churn_fraction=0.4, seed=4)
    print(f"global stream: {len(global_stream)} flow updates "
          f"(with teardowns), {global_stream.final_edge_count()} live flows")

    # Four collection sites each see an arbitrary sub-stream.
    sites = global_stream.partition(4, seed=5)
    for i, site in enumerate(sites):
        print(f"  site {i}: {len(site)} updates")

    # Every site builds sketches with the SAME shared seed (this is what
    # makes the linear measurements compatible).
    shared = HashSource(0xD157)
    coordinator_cut = MinCutSketch(n, epsilon=0.5, source=shared.derive(1))
    coordinator_sparse = SimpleSparsification(
        n, epsilon=0.5, source=shared.derive(2), c_k=0.3
    )
    for site_stream in sites:
        site_cut = MinCutSketch(n, epsilon=0.5, source=shared.derive(1))
        site_sparse = SimpleSparsification(
            n, epsilon=0.5, source=shared.derive(2), c_k=0.3
        )
        site_cut.consume(site_stream)
        site_sparse.consume(site_stream)
        # Ship only the sketch (tiny), never the raw stream.
        coordinator_cut.merge(site_cut)
        coordinator_sparse.merge(site_sparse)

    # Coordinator-side answers vs centralised ground truth.
    truth_graph = Graph.from_multiplicities(n, global_stream.multiplicities())
    result = coordinator_cut.estimate()
    print(f"\nweakest cut: merged-sketch={result.value} "
          f"exact={global_min_cut_value(truth_graph)}")

    sparsifier = coordinator_sparse.sparsifier()
    report = cut_approximation_report(truth_graph, sparsifier,
                                      sample_cuts=300, seed=1)
    print(f"capacity model: {sparsifier.num_edges}/{truth_graph.num_edges()} "
          f"edges kept, max cut error {report.max_relative_error:.3f}")
    print("\nno raw flow ever left a site — only linear sketches did.")


if __name__ == "__main__":
    main()
