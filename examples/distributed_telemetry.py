"""Distributed IP-flow telemetry: merge sketches across collection sites.

The Section 1.1 distributed-streams story.  An ISP observes flows
(edges between IP endpoints) at four collection points; no site sees
the whole traffic, and shipping raw streams to one place is exactly
what sketching avoids.  Because the sketches are linear, each site
summarises its own sub-stream and the coordinator *adds* the four
sketches — the result is bit-identical to sketching the union stream.

The coordinator then builds a cut sparsifier of the global flow graph
(capacity planning) and estimates the minimum cut (weakest point of the
network) without any site ever sharing raw flows.

Run:  python examples/distributed_telemetry.py
"""

from __future__ import annotations

import functools

from repro import HashSource
from repro.core import cut_approximation_report
from repro.distributed import mincut_sketch, sharded_consume, sparsifier_sketch
from repro.graphs import Graph, global_min_cut_value
from repro.streams import churn_stream, planted_partition_graph


def main() -> None:
    n = 40
    # Global traffic graph: two data-centre regions, thin inter-region links.
    edges = planted_partition_graph(n, p_in=0.6, p_out=0.08, seed=3)
    global_stream = churn_stream(n, edges, churn_fraction=0.4, seed=4)
    print(f"global stream: {len(global_stream)} flow updates "
          f"(with teardowns), {global_stream.final_edge_count()} live flows")

    # Every site builds sketches with the SAME shared seed (this is what
    # makes the linear measurements compatible).  The ShardedSketchRunner
    # automates the loop: partition → per-site columnar consume →
    # serialise to bytes (the only thing that crosses the wire) →
    # coordinator load + verify + merge.
    shared = HashSource(0xD157)
    cut_run = sharded_consume(
        global_stream,
        functools.partial(mincut_sketch, n, shared.derive(1).seed),
        sites=4, strategy="hash-edge",
    )
    for site in cut_run.sites:
        print(f"  site {site.site}: {site.tokens} updates → "
              f"{site.payload_bytes} sketch bytes shipped")
    sparse_run = sharded_consume(
        global_stream,
        functools.partial(sparsifier_sketch, n, shared.derive(2).seed),
        sites=4, strategy="hash-edge",
    )

    # Coordinator-side answers vs centralised ground truth.
    truth_graph = Graph.from_multiplicities(n, global_stream.multiplicities())
    result = cut_run.sketch.estimate()
    print(f"\nweakest cut: merged-sketch={result.value} "
          f"exact={global_min_cut_value(truth_graph)}")

    sparsifier = sparse_run.sketch.sparsifier()
    report = cut_approximation_report(truth_graph, sparsifier,
                                      sample_cuts=300, seed=1)
    print(f"capacity model: {sparsifier.num_edges}/{truth_graph.num_edges()} "
          f"edges kept, max cut error {report.max_relative_error:.3f}")
    print("\nno raw flow ever left a site — only linear sketches did.")


if __name__ == "__main__":
    main()
