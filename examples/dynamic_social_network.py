"""Dynamic social network: triangle and pattern tracking under churn.

The Section 4 motivation: a friendship graph where relationships form
*and dissolve*.  Insert-only estimators (Buriol et al.) break the
moment an edge is deleted; the linear subgraph sketch does not care.

The script simulates three "eras" of a social network — growth, a
community merge, then heavy churn — answering γ_triangle and γ_path3
(the clustering signature) after each era through a
``subgraph_count`` engine, and compares against exact censuses.

Run:  python examples/dynamic_social_network.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DynamicGraphStream, GraphSketchEngine, SketchSpec, SubgraphCountQuery
from repro.core import PATH_3, TRIANGLE, encoding_class
from repro.graphs import Graph, gamma_exact, triangle_count


def era_growth(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """Two tight communities form (high clustering)."""
    for base in (0, 15):
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.5:
                    stream.insert(base + i, base + j)


def era_merge(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """Bridges appear between the communities (wedges before triangles)."""
    for _ in range(18):
        u = int(rng.integers(0, 12))
        v = int(rng.integers(15, 27))
        if (min(u, v), max(u, v)) not in stream.multiplicities():
            stream.insert(u, v)


def era_churn(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """A third of existing friendships dissolve; a few reform."""
    edges = list(stream.multiplicities())
    rng.shuffle(edges)
    dropped = edges[: len(edges) // 3]
    for u, v in dropped:
        stream.delete(u, v)
    for u, v in dropped[: len(dropped) // 4]:
        stream.insert(u, v)


def checkpoint(name: str, stream: DynamicGraphStream, seed: int,
               samplers: int) -> None:
    """Sketch the stream so far through the engine and report estimates."""
    n = stream.n
    engine = GraphSketchEngine.for_spec(
        SketchSpec.of("subgraph_count", n, seed=seed, order=3,
                      samplers=samplers)
    ).ingest(stream)
    graph = Graph.from_multiplicities(n, stream.multiplicities())
    tri = engine.query(SubgraphCountQuery("triangle"))
    p3 = engine.query(SubgraphCountQuery("path3"))
    g_tri = gamma_exact(graph, encoding_class(TRIANGLE), 3)
    g_p3 = gamma_exact(graph, encoding_class(PATH_3), 3)
    print(f"[{name}] edges={graph.num_edges():3d} "
          f"triangles={triangle_count(graph):3d} | "
          f"γ_triangle sketch={tri.gamma:.3f} exact={g_tri:.3f} | "
          f"γ_path3 sketch={p3.gamma:.3f} exact={g_p3:.3f}")


def main(quick: bool = False) -> None:
    n = 27
    samplers = 64 if quick else 128
    rng = np.random.default_rng(7)
    stream = DynamicGraphStream(n)

    print("era 1: two communities grow")
    era_growth(stream, rng)
    checkpoint("growth", stream, seed=101, samplers=samplers)

    print("era 2: communities merge")
    era_merge(stream, rng)
    checkpoint("merge ", stream, seed=102, samplers=samplers)

    print("era 3: churn (deletions!) — insert-only estimators break here")
    era_churn(stream, rng)
    checkpoint("churn ", stream, seed=103, samplers=samplers)

    print("\nThe same linear sketch served all eras: deletions simply")
    print("cancelled the earlier insertions inside the sketch (Section 1.1).")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="subgraph tracking demo")
    parser.add_argument("--quick", action="store_true",
                        help="fewer samplers for CI")
    main(quick=parser.parse_args().quick)
