"""Dynamic social network: triangle and pattern tracking under churn.

The Section 4 motivation: a friendship graph where relationships form
*and dissolve*.  Insert-only estimators (Buriol et al.) break the
moment an edge is deleted; the linear subgraph sketch does not care.

The script simulates three "eras" of a social network — growth, a
community merge, then heavy churn — checkpointing γ_triangle and
γ_path3 (the clustering signature) after each era from ONE sketch that
was fed the whole token stream, and compares against exact censuses.

Run:  python examples/dynamic_social_network.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicGraphStream, HashSource, SubgraphSketch
from repro.core import PATH_3, TRIANGLE, encoding_class
from repro.graphs import Graph, gamma_exact, triangle_count


def era_growth(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """Two tight communities form (high clustering)."""
    for base in (0, 15):
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.5:
                    stream.insert(base + i, base + j)


def era_merge(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """Bridges appear between the communities (wedges before triangles)."""
    for _ in range(18):
        u = int(rng.integers(0, 12))
        v = int(rng.integers(15, 27))
        if (min(u, v), max(u, v)) not in stream.multiplicities():
            stream.insert(u, v)


def era_churn(stream: DynamicGraphStream, rng: np.random.Generator) -> None:
    """A third of existing friendships dissolve; a few reform."""
    edges = list(stream.multiplicities())
    rng.shuffle(edges)
    dropped = edges[: len(edges) // 3]
    for u, v in dropped:
        stream.delete(u, v)
    for u, v in dropped[: len(dropped) // 4]:
        stream.insert(u, v)


def checkpoint(name: str, stream: DynamicGraphStream, seed: int) -> None:
    """Rebuild a sketch over the stream so far and report estimates."""
    n = stream.n
    sketch = SubgraphSketch(
        n, order=3, samplers=128, source=HashSource(seed)
    ).consume(stream)
    graph = Graph.from_multiplicities(n, stream.multiplicities())
    est = sketch.estimate_many([TRIANGLE, PATH_3])
    g_tri = gamma_exact(graph, encoding_class(TRIANGLE), 3)
    g_p3 = gamma_exact(graph, encoding_class(PATH_3), 3)
    print(f"[{name}] edges={graph.num_edges():3d} "
          f"triangles={triangle_count(graph):3d} | "
          f"γ_triangle sketch={est['triangle'].gamma:.3f} exact={g_tri:.3f} | "
          f"γ_path3 sketch={est['path3'].gamma:.3f} exact={g_p3:.3f}")


def main() -> None:
    n = 27
    rng = np.random.default_rng(7)
    stream = DynamicGraphStream(n)

    print("era 1: two communities grow")
    era_growth(stream, rng)
    checkpoint("growth", stream, seed=101)

    print("era 2: communities merge")
    era_merge(stream, rng)
    checkpoint("merge ", stream, seed=102)

    print("era 3: churn (deletions!) — insert-only estimators break here")
    era_churn(stream, rng)
    checkpoint("churn ", stream, seed=103)

    print("\nThe same linear sketch served all eras: deletions simply")
    print("cancelled the earlier insertions inside the sketch (Section 1.1).")


if __name__ == "__main__":
    main()
