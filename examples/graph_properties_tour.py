"""Tour of the companion property sketches (§1.2 of the paper).

The paper builds on its companion work [4], which established sketches
for connectivity, k-connectivity, bipartiteness and minimum spanning
trees.  This library ships all of them; the tour runs each on a small
infrastructure-flavoured scenario:

* **bipartiteness** — is a task-machine assignment graph still 2-
  colourable after a stream of edits?
* **k-edge-connectivity** — does the data-centre fabric survive any
  k-1 link failures?
* **MST weight** — cheapest cabling to keep everything connected, with
  costs as weights, under churn.
* **cut queries** — list the exact links crossing a rack boundary.

Run:  python examples/graph_properties_tour.py
"""

from __future__ import annotations

from repro import DynamicGraphStream, HashSource
from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    MSTWeightSketch,
    is_k_connected_sketch,
)
from repro.streams import complete_bipartite_graph, dumbbell_graph


def bipartite_demo() -> None:
    print("-- bipartiteness: task-machine assignments ------------------")
    n = 9  # 4 tasks + 5 machines
    stream = DynamicGraphStream(n)
    for u, v in complete_bipartite_graph(4, 5):
        stream.insert(u, v)
    sketch = BipartitenessSketch(n, HashSource(1)).consume(stream)
    print(f"  assignment graph bipartite: {sketch.is_bipartite()}")

    # A task-task dependency sneaks in: odd structure appears.
    stream.insert(0, 1)
    sketch2 = BipartitenessSketch(n, HashSource(1)).consume(stream)
    print(f"  after a task-task edge   : {sketch2.is_bipartite()}")

    stream.delete(0, 1)
    sketch3 = BipartitenessSketch(n, HashSource(1)).consume(stream)
    print(f"  after deleting it again  : {sketch3.is_bipartite()}")


def connectivity_demo() -> None:
    print("-- k-edge-connectivity: fabric survivability ----------------")
    clique, uplinks = 8, 4
    n = 2 * clique
    stream = DynamicGraphStream(n)
    for u, v in dumbbell_graph(clique, uplinks):
        stream.insert(u, v)
    for k in (3, 4, 5):
        ok = is_k_connected_sketch(n, k, stream, HashSource(2 + k))
        verdict = "survives" if ok else "can be partitioned by"
        print(f"  {verdict} any {k - 1} link failures "
              f"({k}-connected: {ok})")


def mst_demo() -> None:
    print("-- MST weight: cheapest connecting cabling ------------------")
    n = 6
    stream = DynamicGraphStream(n)
    # (u, v, cost): a ring with one expensive chord.
    links = [(0, 1, 2), (1, 2, 3), (2, 3, 2), (3, 4, 4), (4, 5, 1), (5, 0, 7)]
    for u, v, cost in links:
        stream.insert(u, v, copies=cost)
    sketch = MSTWeightSketch(n, max_weight=8, source=HashSource(9)).consume(stream)
    print(f"  minimum cabling cost: {sketch.estimate():.0f} "
          f"(ring minus the cost-7 link = 12)")

    # The cheap 4-5 link is decommissioned and replaced, pricier.
    stream.delete(4, 5, copies=1)
    stream.insert(4, 5, copies=6)
    sketch2 = MSTWeightSketch(n, max_weight=8, source=HashSource(9)).consume(stream)
    print(f"  after re-pricing 4-5: {sketch2.estimate():.0f}")


def cut_query_demo() -> None:
    print("-- cut queries: which links cross the rack boundary? --------")
    clique, uplinks = 6, 3
    n = 2 * clique
    stream = DynamicGraphStream(n)
    for u, v in dumbbell_graph(clique, uplinks):
        stream.insert(u, v)
    sketch = CutEdgesSketch(n, k=8, source=HashSource(17)).consume(stream)
    rack_a = set(range(clique))
    crossing = sketch.crossing_edges(rack_a)
    print(f"  links crossing rack A boundary: {sorted(crossing)}")
    print(f"  boundary capacity: {sketch.cut_value(rack_a)}")


def main() -> None:
    bipartite_demo()
    connectivity_demo()
    mst_demo()
    cut_query_demo()


if __name__ == "__main__":
    main()
