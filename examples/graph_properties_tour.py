"""Tour of the companion property sketches (§1.2 of the paper).

The paper builds on its companion work [4], which established sketches
for connectivity, k-connectivity, bipartiteness and minimum spanning
trees.  This library ships all of them behind the engine's capability
registry; the tour runs each on a small infrastructure-flavoured
scenario:

* **bipartiteness** — is a task-machine assignment graph still 2-
  colourable after a stream of edits? (``PropertiesQuery``)
* **k-edge-connectivity** — does the data-centre fabric survive any
  k-1 link failures? (``KEdgeConnectivityQuery``)
* **MST weight** — cheapest cabling to keep everything connected, with
  costs as weights, under churn. (``PropertiesQuery``)
* **cut queries** — list the exact links crossing a rack boundary.
  (``CutQuery``)

Run:  python examples/graph_properties_tour.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import (
    CutQuery,
    DynamicGraphStream,
    GraphSketchEngine,
    KEdgeConnectivityQuery,
    PropertiesQuery,
    SketchSpec,
)
from repro.streams import complete_bipartite_graph, dumbbell_graph


def bipartite(stream: DynamicGraphStream, seed: int) -> bool:
    engine = GraphSketchEngine.for_spec(
        SketchSpec.of("bipartiteness", stream.n, seed=seed)
    ).ingest(stream)
    return engine.query(PropertiesQuery())["bipartite"]


def bipartite_demo() -> None:
    print("-- bipartiteness: task-machine assignments ------------------")
    n = 9  # 4 tasks + 5 machines
    stream = DynamicGraphStream(n)
    for u, v in complete_bipartite_graph(4, 5):
        stream.insert(u, v)
    print(f"  assignment graph bipartite: {bipartite(stream, 1)}")

    # A task-task dependency sneaks in: odd structure appears.
    stream.insert(0, 1)
    print(f"  after a task-task edge   : {bipartite(stream, 1)}")

    stream.delete(0, 1)
    print(f"  after deleting it again  : {bipartite(stream, 1)}")


def connectivity_demo() -> None:
    print("-- k-edge-connectivity: fabric survivability ----------------")
    clique, uplinks = 8, 4
    n = 2 * clique
    stream = DynamicGraphStream(n)
    for u, v in dumbbell_graph(clique, uplinks):
        stream.insert(u, v)
    for k in (3, 4, 5):
        engine = GraphSketchEngine.for_spec(
            SketchSpec.of("edge_connectivity", n, seed=2 + k, k=k)
        ).ingest(stream)
        result = engine.query(KEdgeConnectivityQuery())
        verdict = "survives" if result.is_k_connected else "can be partitioned by"
        print(f"  {verdict} any {k - 1} link failures "
              f"({k}-connected: {result.is_k_connected}, "
              f"witness {result.witness_edges} edges)")


def mst_demo() -> None:
    print("-- MST weight: cheapest connecting cabling ------------------")
    n = 6
    stream = DynamicGraphStream(n)
    # (u, v, cost): a ring with one expensive chord.
    links = [(0, 1, 2), (1, 2, 3), (2, 3, 2), (3, 4, 4), (4, 5, 1), (5, 0, 7)]
    for u, v, cost in links:
        stream.insert(u, v, copies=cost)
    spec = SketchSpec.of("mst_weight", n, seed=9, max_weight=8)
    engine = GraphSketchEngine.for_spec(spec).ingest(stream)
    print(f"  minimum cabling cost: "
          f"{engine.query(PropertiesQuery())['mst_weight']:.0f} "
          f"(ring minus the cost-7 link = 12)")

    # The cheap 4-5 link is decommissioned and replaced, pricier.
    stream.delete(4, 5, copies=1)
    stream.insert(4, 5, copies=6)
    engine2 = GraphSketchEngine.for_spec(spec).ingest(stream)
    print(f"  after re-pricing 4-5: "
          f"{engine2.query(PropertiesQuery())['mst_weight']:.0f}")


def cut_query_demo() -> None:
    print("-- cut queries: which links cross the rack boundary? --------")
    clique, uplinks = 6, 3
    n = 2 * clique
    stream = DynamicGraphStream(n)
    for u, v in dumbbell_graph(clique, uplinks):
        stream.insert(u, v)
    engine = GraphSketchEngine.for_spec(
        SketchSpec.of("cut_edges", n, seed=17, k=8)
    ).ingest(stream)
    result = engine.query(CutQuery(side=frozenset(range(clique))))
    print(f"  links crossing rack A boundary: "
          f"{sorted((u, v) for u, v, _m in result.crossing_edges)}")
    print(f"  boundary capacity: {result.cut_value}")


def main(quick: bool = False) -> None:
    bipartite_demo()
    connectivity_demo()
    mst_demo()
    cut_query_demo()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="property sketch tour")
    parser.add_argument("--quick", action="store_true",
                        help="accepted for CI symmetry (already tiny)")
    main(quick=parser.parse_args().quick)
