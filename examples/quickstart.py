"""Quickstart: sketch a dynamic graph stream and query it.

Builds a small dynamic stream (insertions *and* deletions), feeds it to
three sketches in a single pass, and queries them:

* connectivity / spanning forest (AGM sketch),
* (1+ε) minimum cut (Fig. 1),
* cut sparsifier (Fig. 2).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DynamicGraphStream,
    HashSource,
    MinCutSketch,
    SimpleSparsification,
    SpanningForestSketch,
)
from repro.core import cut_approximation_report
from repro.graphs import Graph, global_min_cut_value


def main() -> None:
    n = 10

    # A dynamic stream: build a cycle, add chords, then churn some edges.
    stream = DynamicGraphStream(n)
    for i in range(n):
        stream.insert(i, (i + 1) % n)          # cycle
    stream.insert(0, 5)                        # chord
    stream.insert(2, 7)                        # chord
    stream.insert(3, 8)                        # chord — will be deleted
    stream.delete(3, 8)                        # deletions cancel exactly
    stream.delete(0, 1)                        # break the cycle...
    stream.insert(0, 1)                        # ...and repair it
    print(f"stream: {len(stream)} tokens over {n} nodes, "
          f"{stream.final_edge_count()} final edges")

    # Ground truth for comparison (a real deployment never has this).
    graph = Graph.from_multiplicities(n, stream.multiplicities())

    # --- sketch 1: connectivity ------------------------------------------------
    forest = SpanningForestSketch(n, HashSource(1)).consume(stream)
    print(f"connected: {forest.is_connected()} "
          f"(components: {len(forest.connected_components())})")

    # --- sketch 2: minimum cut --------------------------------------------------
    mincut = MinCutSketch(n, epsilon=0.5, source=HashSource(2)).consume(stream)
    result = mincut.estimate()
    print(f"min cut: sketch={result.value} exact={global_min_cut_value(graph)}")

    # --- sketch 3: sparsifier ---------------------------------------------------
    sparsify = SimpleSparsification(
        n, epsilon=0.5, source=HashSource(3)
    ).consume(stream)
    sparsifier = sparsify.sparsifier()
    report = cut_approximation_report(graph, sparsifier)
    print(f"sparsifier: {sparsifier.num_edges}/{graph.num_edges()} edges, "
          f"max cut error {report.max_relative_error:.3f} over "
          f"{report.cuts_evaluated} cuts "
          f"({'exhaustive' if report.exhaustive else 'sampled'})")


if __name__ == "__main__":
    main()
