"""Quickstart: sketch a dynamic graph stream through the engine API.

Builds a small dynamic stream (insertions *and* deletions), declares
three :class:`~repro.SketchSpec`\\ s, and answers typed queries through
one :class:`~repro.GraphSketchEngine` each:

* connectivity / spanning forest (AGM sketch),
* (1+ε) minimum cut (Fig. 1),
* cut sparsifier (Fig. 2).

Run:  python examples/quickstart.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import (
    ConnectivityQuery,
    DynamicGraphStream,
    GraphSketchEngine,
    MinCutQuery,
    SketchSpec,
    SparsifierQuery,
)
from repro.core import cut_approximation_report
from repro.graphs import Graph, global_min_cut_value


def main(quick: bool = False) -> None:
    n = 10

    # A dynamic stream: build a cycle, add chords, then churn some edges.
    stream = DynamicGraphStream(n)
    for i in range(n):
        stream.insert(i, (i + 1) % n)          # cycle
    stream.insert(0, 5)                        # chord
    stream.insert(2, 7)                        # chord
    stream.insert(3, 8)                        # chord — will be deleted
    stream.delete(3, 8)                        # deletions cancel exactly
    stream.delete(0, 1)                        # break the cycle...
    stream.insert(0, 1)                        # ...and repair it
    print(f"stream: {len(stream)} tokens over {n} nodes, "
          f"{stream.final_edge_count()} final edges")

    # Ground truth for comparison (a real deployment never has this).
    graph = Graph.from_multiplicities(n, stream.multiplicities())

    # --- engine 1: connectivity -------------------------------------------------
    forest = GraphSketchEngine.for_spec(
        SketchSpec.of("spanning_forest", n, seed=1)
    ).ingest(stream)
    conn = forest.query(ConnectivityQuery(u=0, v=5))
    print(f"connected: {conn.connected} (components: {conn.components}, "
          f"0~5: {conn.same_component})")

    # --- engine 2: minimum cut --------------------------------------------------
    mincut = GraphSketchEngine.for_spec(
        SketchSpec.of("mincut", n, seed=2, epsilon=0.5)
    ).ingest(stream)
    result = mincut.query(MinCutQuery())
    print(f"min cut: sketch={result.value} exact={global_min_cut_value(graph)}")

    # --- engine 3: sparsifier ---------------------------------------------------
    sparsify = GraphSketchEngine.for_spec(
        SketchSpec.of("simple_sparsification", n, seed=3, epsilon=0.5)
    ).ingest(stream)
    sparse = sparsify.query(SparsifierQuery())
    report = cut_approximation_report(graph, sparse.sparsifier)
    print(f"sparsifier: {sparse.edges}/{graph.num_edges()} edges, "
          f"max cut error {report.max_relative_error:.3f} over "
          f"{report.cuts_evaluated} cuts "
          f"({'exhaustive' if report.exhaustive else 'sampled'})")
    print(f"  (answered in {sparse.telemetry.seconds * 1e3:.1f} ms)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="engine API quickstart")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes for CI (already tiny here)")
    main(quick=parser.parse_args().quick)
