"""Temporal forensics: answer "was u–v connected during epoch 3?"

A long-running service sketches a churning friendship graph and seals a
cumulative checkpoint at the end of every epoch (say, every hour).
Weeks later an investigator asks about the *past*: were two accounts in
the same component at hour 3?  How much churn happened inside hour 5?
Nobody kept the stream — but nobody needs it: checkpoints are linear
sketches, so

* the graph *state* at the end of epoch ``t`` is the prefix window
  ``[0, t)``, and
* the *activity inside* a window ``[t1, t2)`` is checkpoint ``t2``
  minus checkpoint ``t1`` — materialised by subtraction, exactly.

The engine makes both one windowed ``query()``; its snapshot is the
epoch manifest, and ``GraphSketchEngine.restore`` rebuilds a queryable
engine from nothing but those bytes.

Run:  python examples/temporal_forensics.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import ConnectivityQuery, GraphSketchEngine, SketchSpec


def main(quick: bool = False) -> None:
    from repro.streams import churn_stream, planted_partition_graph

    epochs = 4 if quick else 6
    n = 20 if quick else 30
    # Two communities with occasional cross-links, plus heavy churn —
    # edges appear and disappear throughout the stream.
    edges = planted_partition_graph(n, p_in=0.5, p_out=0.05, seed=11)
    stream = churn_stream(n, edges, churn_fraction=0.6, seed=12)
    print(f"service stream: {len(stream)} updates over {epochs} epochs")

    # -- the service side: consume, seal, persist ---------------------------
    service = (GraphSketchEngine
               .for_spec(SketchSpec.of("spanning_forest", n, seed=0xF0CA1))
               .epochs(count=epochs)
               .ingest(stream))
    manifest = service.snapshot()
    print(f"persisted manifest: {service.epochs_sealed} checkpoints, "
          f"{len(manifest)} bytes (the stream itself is now gone)\n")

    # -- the investigator side: restore and interrogate ----------------------
    engine = GraphSketchEngine.restore(manifest)

    u, v = 0, n - 1  # one account from each community
    for epoch in range(1, epochs + 1):
        state = engine.query(ConnectivityQuery(u=u, v=v, window=(0, epoch)))
        print(f"end of epoch {epoch}: accounts {u} and {v} "
              f"{'WERE' if state.same_component else 'were NOT'} connected "
              f"({state.components} components)")

    # Activity *inside* epoch 3 alone: subtraction of two checkpoints.
    inside = engine.query(ConnectivityQuery(window=(2, 3)))
    print(f"\nnet churn inside epoch 3: {inside.forest_edges} forest "
          f"edges over {engine.window_tokens(2, 3)} updates "
          f"({inside.telemetry.payload_bytes} checkpoint bytes loaded)")

    # Sliding window over the second half of the history.
    half = epochs // 2
    window = engine.query(ConnectivityQuery(window=(half, epochs)))
    print(f"window [{half}, {epochs}): {window.components} components "
          f"in the net-activity graph "
          f"({engine.window_tokens(half, epochs)} updates, materialised "
          f"without replay)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="temporal forensics demo")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI")
    main(quick=parser.parse_args().quick)
