"""Temporal forensics: answer "was u–v connected during epoch 3?"

A long-running service sketches a churning friendship graph and seals a
cumulative checkpoint at the end of every epoch (say, every hour).
Weeks later an investigator asks about the *past*: were two accounts in
the same component at hour 3?  How much churn happened inside hour 5?
Nobody kept the stream — but nobody needs it: checkpoints are linear
sketches, so

* the graph *state* at the end of epoch ``t`` is checkpoint ``t``
  itself (the prefix sketch), and
* the *activity inside* a window ``[t1, t2)`` is checkpoint ``t2``
  minus checkpoint ``t1`` — computed by ``subtract()``, exactly.

Run:  python examples/temporal_forensics.py
"""

from __future__ import annotations

import functools

from repro.distributed import forest_sketch
from repro.streams import churn_stream, planted_partition_graph
from repro.temporal import EpochManager, TemporalQueryEngine

EPOCHS = 6


def main() -> None:
    n = 30
    # Two communities with occasional cross-links, plus heavy churn —
    # edges appear and disappear throughout the stream.
    edges = planted_partition_graph(n, p_in=0.5, p_out=0.05, seed=11)
    stream = churn_stream(n, edges, churn_fraction=0.6, seed=12)
    print(f"service stream: {len(stream)} updates over {EPOCHS} epochs")

    # -- the service side: consume, seal, persist ---------------------------
    factory = functools.partial(forest_sketch, n, 0xF0CA1)
    timeline = EpochManager.consume(factory, stream, epochs=EPOCHS)
    manifest = timeline.to_bytes()
    print(f"persisted manifest: {timeline.epochs} checkpoints, "
          f"{len(manifest)} bytes (the stream itself is now gone)\n")

    # -- the investigator side: load and interrogate ------------------------
    engine = TemporalQueryEngine.from_manifest(manifest)

    u, v = 0, n - 1  # one account from each community
    for epoch in range(1, EPOCHS + 1):
        connected = engine.was_connected(u, v, through_epoch=epoch)
        state = engine.answer(0, epoch)
        print(f"end of epoch {epoch}: accounts {u} and {v} "
              f"{'WERE' if connected else 'were NOT'} connected "
              f"({state['components']} components)")

    # Activity *inside* epoch 3 alone: subtraction of two checkpoints.
    inside = engine.answer(2, 3)
    print(f"\nnet churn inside epoch 3: {inside['forest_edges']} forest "
          f"edges over {engine.window_tokens(2, 3)} updates")

    # Sliding window over the second half of the history.
    half = EPOCHS // 2
    window = engine.answer(half, EPOCHS)
    print(f"window [{half}, {EPOCHS}): {window['components']} components "
          f"in the net-activity graph "
          f"({engine.window_tokens(half, EPOCHS)} updates, materialised "
          f"without replay)")


if __name__ == "__main__":
    main()
