"""Road-network distance oracles from adaptive sketches (Section 5).

A city road grid suffers closures and reopenings (a dynamic stream).
A routing service wants a *distance oracle* far smaller than the road
graph: a spanner.  We build both Section 5 constructions through the
engine's ``spanner-distance`` capability —

* Baswana–Sen emulation: k batches, stretch ≤ 2k−1;
* RECURSECONNECT: only ~log k batches, stretch ≤ k^{log₂5}−1 —

and compare their size, adaptivity (stream passes), and the actual
detour factors they impose on sampled routes.

Run:  python examples/spanner_routing.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import GraphSketchEngine, SketchSpec, SpannerDistanceQuery
from repro.graphs import Graph, measure_stretch
from repro.streams import DynamicGraphStream, grid_graph


def build_road_stream(rows: int, cols: int) -> DynamicGraphStream:
    """Grid roads with a construction season: close, then reopen, a batch."""
    n = rows * cols
    edges = grid_graph(rows, cols)
    stream = DynamicGraphStream(n)
    for u, v in edges:
        stream.insert(u, v)
    closures = edges[::7]  # every 7th segment goes under construction
    for u, v in closures:
        stream.delete(u, v)
    for u, v in closures:
        stream.insert(u, v)  # season over
    return stream


def main(quick: bool = False) -> None:
    rows = cols = 5 if quick else 7
    n = rows * cols
    stream = build_road_stream(rows, cols)
    graph = Graph.from_multiplicities(n, stream.multiplicities())
    print(f"road network: {n} junctions, {graph.num_edges()} segments, "
          f"{len(stream)} update tokens")

    oracles = [
        ("Baswana-Sen k=3 (stretch ≤ 5)",
         SketchSpec.of("baswana_sen_spanner", n, seed=21, k=3)),
        ("RECURSECONNECT k=4 (stretch ≤ 24)",
         SketchSpec.of("recurse_connect_spanner", n, seed=22, k=4)),
    ]
    src, dst = 0, n - 1  # opposite corners of the city
    for name, spec in oracles:
        engine = GraphSketchEngine.for_spec(spec).ingest(stream)
        result = engine.query(SpannerDistanceQuery(source=src, target=dst))
        stretch = measure_stretch(graph, result.spanner)
        print(f"\n{name}")
        print(f"  oracle size : {result.edges}/{graph.num_edges()} segments")
        print(f"  batches     : {result.batches} (stream passes)")
        print(f"  max detour  : {stretch.max_stretch:.1f}x "
              f"(bound {result.stretch_bound:.0f}x)")
        print(f"  mean detour : {stretch.mean_stretch:.2f}x")
        print(f"  corner-to-corner: via oracle {result.distance:.0f} hops")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="spanner oracle demo")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid for CI")
    main(quick=parser.parse_args().quick)
