"""Road-network distance oracles from adaptive sketches (Section 5).

A city road grid suffers closures and reopenings (a dynamic stream).
A routing service wants a *distance oracle* far smaller than the road
graph: a spanner.  We build both Section 5 constructions —

* Baswana–Sen emulation: k batches, stretch ≤ 2k−1;
* RECURSECONNECT: only ~log k batches, stretch ≤ k^{log₂5}−1 —

and compare their size, adaptivity (stream passes), and the actual
detour factors they impose on sampled routes.

Run:  python examples/spanner_routing.py
"""

from __future__ import annotations

from repro import BaswanaSenSpanner, HashSource, RecurseConnectSpanner
from repro.graphs import Graph, bfs_distances, measure_stretch
from repro.streams import DynamicGraphStream, grid_graph


def build_road_stream(rows: int, cols: int) -> DynamicGraphStream:
    """Grid roads with a construction season: close, then reopen, a batch."""
    n = rows * cols
    edges = grid_graph(rows, cols)
    stream = DynamicGraphStream(n)
    for u, v in edges:
        stream.insert(u, v)
    closures = edges[:: 7]  # every 7th segment goes under construction
    for u, v in closures:
        stream.delete(u, v)
    for u, v in closures:
        stream.insert(u, v)  # season over
    return stream


def main() -> None:
    rows = cols = 7
    n = rows * cols
    stream = build_road_stream(rows, cols)
    graph = Graph.from_multiplicities(n, stream.multiplicities())
    print(f"road network: {n} junctions, {graph.num_edges()} segments, "
          f"{len(stream)} update tokens")

    for name, builder in (
        ("Baswana-Sen k=3 (stretch ≤ 5)",
         BaswanaSenSpanner(n, k=3, source=HashSource(21))),
        ("RECURSECONNECT k=4 (stretch ≤ 24)",
         RecurseConnectSpanner(n, k=4, source=HashSource(22))),
    ):
        report = builder.build(stream)
        stretch = measure_stretch(graph, report.spanner)
        print(f"\n{name}")
        print(f"  oracle size : {report.edges}/{graph.num_edges()} segments")
        print(f"  batches     : {report.batches} (stream passes)")
        print(f"  max detour  : {stretch.max_stretch:.1f}x "
              f"(bound {report.stretch_bound:.0f}x)")
        print(f"  mean detour : {stretch.mean_stretch:.2f}x")

        # A concrete route: opposite corners of the city.
        src, dst = 0, n - 1
        true_d = bfs_distances(graph, src)[dst]
        oracle_d = bfs_distances(report.spanner, src)[dst]
        print(f"  corner-to-corner: true {true_d:.0f} hops, "
              f"via oracle {oracle_d:.0f} hops")


if __name__ == "__main__":
    main()
