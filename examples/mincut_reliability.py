"""Network-reliability monitoring: tracking the minimum cut under failures.

A backbone operator watches link churn (failures + repairs) and wants
to know, at any point, how close the network is to partitioning — the
global minimum cut.  Storing the live topology per monitoring shard is
wasteful; a MINCUT sketch (Fig. 1) is ~polylog per node and is simply
*updated* by each link event.

The script drives a dumbbell backbone (two dense regions joined by a
few cross-links) through failure waves and checks the engine estimate
against the exact cut after each wave.

Run:  python examples/mincut_reliability.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import DynamicGraphStream, GraphSketchEngine, MinCutQuery, SketchSpec
from repro.graphs import Graph, global_min_cut_value
from repro.streams import dumbbell_graph


def estimate_now(stream: DynamicGraphStream, seed: int) -> tuple[float, float]:
    """Engine estimate and exact value for the current topology."""
    engine = GraphSketchEngine.for_spec(
        SketchSpec.of("mincut", stream.n, seed=seed, epsilon=0.5, c_k=1.5)
    ).ingest(stream)
    graph = Graph.from_multiplicities(stream.n, stream.multiplicities())
    return engine.query(MinCutQuery()).value, global_min_cut_value(graph)


def main(quick: bool = False) -> None:
    clique, bridges = (7, 4) if quick else (9, 5)
    n = 2 * clique
    stream = DynamicGraphStream(n)
    for u, v in dumbbell_graph(clique, bridges):
        stream.insert(u, v)
    print(f"backbone: {n} routers, {stream.final_edge_count()} links, "
          f"{bridges} cross-region links")

    est, exact = estimate_now(stream, seed=31)
    print(f"t0  healthy        : min cut sketch={est:.0f} exact={exact:.0f}")

    # Wave 1: two cross-region links fail.
    stream.delete(0, clique + 0)
    stream.delete(1, clique + 1)
    est, exact = estimate_now(stream, seed=32)
    print(f"t1  2 links down   : min cut sketch={est:.0f} exact={exact:.0f}")

    # Wave 2: one repaired, another two fail — single link left!
    stream.insert(0, clique + 0)
    stream.delete(2, clique + 2)
    stream.delete(3, clique + 3)
    est, exact = estimate_now(stream, seed=33)
    print(f"t2  3 down 1 up    : min cut sketch={est:.0f} exact={exact:.0f}")
    if est <= 2:
        print("    ALERT: network within 2 failures of partition")

    # Wave 3: full repair.
    stream.insert(1, clique + 1)
    stream.insert(2, clique + 2)
    stream.insert(3, clique + 3)
    est, exact = estimate_now(stream, seed=34)
    print(f"t3  repaired       : min cut sketch={est:.0f} exact={exact:.0f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="min-cut monitoring demo")
    parser.add_argument("--quick", action="store_true",
                        help="smaller backbone for CI")
    main(quick=parser.parse_args().quick)
