"""Service-layer load test — sustained ingest and query latency under
concurrent ingest, entirely in-process (pure ASGI, no sockets).

What this measures is the cost of the *serving* layer itself: routing,
wire decode, queue admission, the drainer's lock/to_thread hops — on
top of the engine kernels that ``bench_ingest`` times in isolation.
Two operational claims:

* The batch endpoint sustains a floor of updates/sec end-to-end
  (admit → drain → applied), so the asyncio plumbing is not the
  bottleneck in front of the sketch kernels.
* Query latency stays bounded while ingest runs concurrently: the
  per-tenant lock serialises engine access, so p99 reflects honest
  queueing, not corruption — and it must stay under a generous ceiling.

Byte-identical parity of served answers is pinned separately by
``tests/test_serve.py``; this file only enforces throughput/latency
gates into ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest
from conftest import write_bench_json

from repro.serve import ServeConfig, create_app
from repro.serve.testing import AsgiClient

#: Small universe: the point is the cost of the serving layer, not the
#: sketch kernels (bench_ingest times those) — queries must be cheap
#: enough that p99 reflects queueing behind the drainer, not decode.
N = 128
BATCH_UPDATES = 64

#: Floors/ceilings are deliberately conservative (~5-10× headroom on a
#: dev container) — they catch order-of-magnitude regressions in the
#: service layer, not scheduler jitter.
INGEST_FLOOR_UPS = 2_000.0       # updates/sec through the batch endpoint
STREAM_FLOOR_UPS = 4_000.0       # updates/sec through NDJSON streaming
QUERY_P99_CEILING_S = 1.5        # p99 connectivity query under ingest load


def _updates(count: int, offset: int = 0) -> "list[list[int]]":
    out = []
    for i in range(count):
        u = (i * 7 + offset) % N
        v = (u + 1 + (i % (N - 2))) % N
        if u == v:
            v = (v + 1) % N
        out.append([min(u, v), max(u, v), 1])
    return out


async def _make_tenant(client: AsgiClient, name: str) -> None:
    r = await client.post("/v1/tenants", json={
        "name": name,
        "spec": {"kind": "spanning_forest", "n": N, "seed": 2012},
    })
    assert r.status == 201, r.text


async def _ingest_batches(client: AsgiClient, name: str,
                          batches: int) -> float:
    """Admit + fully drain ``batches`` batches; return elapsed seconds."""
    t0 = time.perf_counter()
    for b in range(batches):
        while True:
            r = await client.post(
                f"/v1/tenants/{name}/batches",
                json={"updates": _updates(BATCH_UPDATES, offset=b)},
            )
            if r.status == 202:
                break
            assert r.status == 429, r.text     # backpressure: retry
            await asyncio.sleep(0.001)
    r = await client.post(f"/v1/tenants/{name}/flush")
    assert r.status == 200, r.text
    return time.perf_counter() - t0


def test_serve_load(quick, enforce):
    batches = 40 if quick else 200
    stream_updates = 2_000 if quick else 10_000
    queries = 50 if quick else 300

    rows: "list[dict]" = []
    gates: "list[dict]" = []

    async def scenario() -> None:
        app = create_app(ServeConfig(queue_capacity=64))
        async with AsgiClient(app) as client:
            # -- sustained batch ingest ---------------------------------
            await _make_tenant(client, "ingest")
            await _ingest_batches(client, "ingest", batches=4)  # warm-up
            seconds = await _ingest_batches(client, "ingest", batches)
            batch_ups = batches * BATCH_UPDATES / seconds
            rows.append({
                "path": "batches", "updates": batches * BATCH_UPDATES,
                "seconds": round(seconds, 4),
                "updates_per_sec": round(batch_ups, 1),
            })

            # -- sustained NDJSON streaming ingest ----------------------
            body = b"".join(
                json.dumps(update).encode() + b"\n"
                for update in _updates(stream_updates)
            )
            t0 = time.perf_counter()
            r = await client.post("/v1/tenants/ingest/stream", body=body)
            assert r.status == 202, r.text
            await client.post("/v1/tenants/ingest/flush")
            stream_seconds = time.perf_counter() - t0
            stream_ups = stream_updates / stream_seconds
            rows.append({
                "path": "stream", "updates": stream_updates,
                "seconds": round(stream_seconds, 4),
                "updates_per_sec": round(stream_ups, 1),
            })

            # -- query latency under concurrent ingest ------------------
            await _make_tenant(client, "query")
            await _ingest_batches(client, "query", batches=2)
            stop = asyncio.Event()

            async def background_ingest() -> None:
                b = 0
                while not stop.is_set():
                    r = await client.post(
                        "/v1/tenants/query/batches",
                        json={"updates": _updates(BATCH_UPDATES, offset=b)},
                    )
                    if r.status == 429:   # back off like a real client
                        await asyncio.sleep(0.005)
                    b += 1

            ingester = asyncio.ensure_future(background_ingest())
            latencies: "list[float]" = []
            query = {"v": 1, "query": "connectivity", "window": None,
                     "args": {"u": 0, "v": N - 1}}
            for _ in range(queries):
                t0 = time.perf_counter()
                r = await client.post("/v1/tenants/query/query", json=query)
                latencies.append(time.perf_counter() - t0)
                assert r.status == 200, r.text
            stop.set()
            await ingester
            latencies.sort()
            p50 = latencies[len(latencies) // 2]
            p99 = latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.99))]
            rows.append({
                "path": "query-under-ingest", "queries": queries,
                "p50_seconds": round(p50, 6), "p99_seconds": round(p99, 6),
            })

        gates.extend([
            {"name": "batch_ingest_updates_per_sec", "value": round(batch_ups, 1),
             "threshold": INGEST_FLOOR_UPS, "enforced": enforce,
             "pass": batch_ups >= INGEST_FLOOR_UPS},
            {"name": "stream_ingest_updates_per_sec", "value": round(stream_ups, 1),
             "threshold": STREAM_FLOOR_UPS, "enforced": enforce,
             "pass": stream_ups >= STREAM_FLOOR_UPS},
            {"name": "query_p99_seconds", "value": round(p99, 6),
             "threshold": QUERY_P99_CEILING_S, "enforced": enforce,
             "pass": p99 <= QUERY_P99_CEILING_S},
        ])

    asyncio.run(scenario())
    path = write_bench_json("serve", rows=rows, gates=gates, quick=quick)
    print(f"\n{path.name}: " + ", ".join(
        f"{g['name']}={g['value']}" for g in gates))
    if enforce:
        failed = [g["name"] for g in gates if not g["pass"]]
        assert not failed, f"serve perf gates failed: {failed}"
