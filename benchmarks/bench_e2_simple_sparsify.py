"""E2 — SIMPLE-SPARSIFICATION (Fig. 2, Lemma 3.2/Theorem 3.3).

Regenerates the cut-quality-vs-space table (sketch vs Karger/Fung
offline baselines) and times streaming vs post-processing, plus the
constant-scale ablation DESIGN.md calls out (c_k sweep).
"""

from __future__ import annotations

import pytest
from conftest import run_table_once

from repro.core import SimpleSparsification, cut_approximation_report
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e2_table(benchmark, seed):
    """Regenerate and print the E2 table; check the error-vs-k shape."""
    table = run_table_once(benchmark, "e2", seed)
    sketch_rows = [r for r in table.rows if r[1] == "sketch"]
    assert len(sketch_rows) >= 2
    # Larger c_k (later row) must not be worse on max error.
    assert sketch_rows[-1][5] <= sketch_rows[0][5] + 1e-9


def test_bench_stream_pass(benchmark, seed):
    wl = make_workload("er-dense", seed=seed)

    def run():
        SimpleSparsification(
            wl.graph.n, epsilon=0.5, source=HashSource(seed), c_k=0.1
        ).consume(wl.stream)

    benchmark(run)


def test_bench_postprocess(benchmark, seed):
    wl = make_workload("er-dense", seed=seed)
    sk = SimpleSparsification(
        wl.graph.n, epsilon=0.5, source=HashSource(seed), c_k=0.1
    ).consume(wl.stream)
    benchmark(sk.sparsifier)


@pytest.mark.parametrize("c_k", [0.05, 0.2])
def test_bench_ck_ablation(benchmark, seed, c_k):
    """Ablation: accuracy/space constant — quality measured, build timed."""
    wl = make_workload("er-dense", seed=seed)

    def run():
        sk = SimpleSparsification(
            wl.graph.n, epsilon=0.5, source=HashSource(seed), c_k=c_k
        ).consume(wl.stream)
        return sk.sparsifier()

    sp = benchmark(run)
    rep = cut_approximation_report(wl.graph, sp, sample_cuts=100, seed=seed)
    print(f"\n[c_k={c_k}] edges={sp.num_edges} max_err="
          f"{rep.max_relative_error:.3f}")
