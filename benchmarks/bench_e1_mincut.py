"""E1 — MINCUT (Fig. 1, Theorems 3.2/3.6).

Regenerates the E1 table (estimate vs exact min cut across workloads)
and times the two phases of the algorithm: the single streaming pass
(sketch updates) and the post-processing (witness extraction +
Stoer–Wagner per level).
"""

from __future__ import annotations

from conftest import run_table_once

from repro.core import MinCutSketch
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e1_table(benchmark, seed):
    """Regenerate and print the E1 table; sanity-check its shape."""
    table = run_table_once(benchmark, "e1", seed)
    assert table.rows, "experiment produced no rows"
    for row in table.rows:
        rel_err = row[6]
        assert rel_err <= 0.5, f"min cut estimate outside (1±ε): {row}"


def test_bench_stream_pass(benchmark, seed):
    """Time the streaming pass (all sketch updates for the stream)."""
    wl = make_workload("dumbbell", seed=seed)

    def run():
        MinCutSketch(
            wl.graph.n, epsilon=0.5, source=HashSource(seed), c_k=1.0
        ).consume(wl.stream)

    benchmark(run)


def test_bench_postprocess(benchmark, seed):
    """Time post-processing only (Fig. 1 step 3) on a prepared sketch."""
    wl = make_workload("dumbbell", seed=seed)
    sketch = MinCutSketch(
        wl.graph.n, epsilon=0.5, source=HashSource(seed), c_k=1.0
    ).consume(wl.stream)
    benchmark(sketch.estimate)
