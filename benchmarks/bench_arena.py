"""Arena-backed merge/subtract/serialise vs the pre-arena pipeline.

The tentpole claim of the contiguous :class:`~repro.sketch.arena.
SketchArena`: the hot path of both the distributed coordinator (merge a
payload per site per epoch) and the temporal engine (materialise a
window as load + subtract) collapses from *npz-decompress → rebuild a
twin sketch → loop over every cell bank* into *verify header → inflate
→ two whole-buffer vector ops*.  This bench replays the K=8 sites ×
16 epochs deployment both ways on identical payloads — the legacy side
drives the still-supported v1 codec plus the per-bank combine loop the
sketch classes used before the arena — and gates the arena path at
**≥ 3×** on the summed merge+subtract work.  Byte-identity of the two
paths' results is asserted here and pinned more broadly by
``tests/test_arena.py`` and the hypothesis equivalence harness.
"""

from __future__ import annotations

import functools
import io
import json
import struct
import time

import numpy as np
import pytest
from conftest import print_table, write_bench_json

from repro.distributed import mincut_sketch
from repro.distributed.partition import partition_batch
from repro.eval import Table
from repro.sketch import (
    dump_sketch,
    load_sketch,
    merge_sketch_bytes,
    subtract_sketch_bytes,
)
from repro.streams import churn_stream, erdos_renyi_graph

SITES = 8
EPOCHS = 16
GATE = 3.0


def _dump_v1(sketch) -> bytes:
    """Byte-faithful v1 (npz) dump — what ``dump_sketch`` produced
    before the arena codec, kept here as the legacy baseline.  Built by
    transcoding the v2 blob, so the header carries the exact codec
    parameters; the timed part is the same gather + npz pack the old
    writer ran."""
    banks = sketch._cell_banks()
    v2 = dump_sketch(sketch)
    (hlen,) = struct.unpack_from("<I", v2, 6)
    header = json.loads(v2[10:10 + hlen].decode("utf-8"))
    header["__magic__"] = "repro-sketch-v1"
    for key in ("encoding", "payload_bytes", "crc32"):
        header.pop(key, None)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        __header__=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        phi=np.concatenate([b.phi for b in banks]),
        iota=np.concatenate([b.iota for b in banks]),
        fp1=np.concatenate([b.fp1 for b in banks]),
        fp2=np.concatenate([b.fp2 for b in banks]),
    )
    return buf.getvalue()


def _legacy_combine(mine, theirs, op: str) -> None:
    """Pre-arena combine: loop every cell bank, four numpy ops each."""
    for a, b in zip(mine._cell_banks(), theirs._cell_banks()):
        getattr(a, op)(b)


@pytest.fixture(scope="module")
def arena_table(quick):
    table = Table(
        f"ARENA: K={SITES} sites × {EPOCHS} epochs — pre-arena pipeline "
        "vs contiguous-buffer path",
        ["phase", "ops", "legacy s", "arena s", "speedup"],
    )
    yield table
    # Quick (CI-telemetry) runs keep the recorded full-size table.
    print_table(table, name=None if quick else "arena")


def test_bench_arena_merge_subtract(benchmark, seed, quick, arena_table):
    n = 16 if quick else 24
    factory = functools.partial(mincut_sketch, n, seed + 9, c_k=0.5)
    edges = erdos_renyi_graph(n, 0.5, seed=seed)
    stream = churn_stream(n, edges, seed=seed + 1)
    batch = stream.as_batch()

    # Site payloads: one consumed sketch per site, both codecs.
    shards = partition_batch(batch, SITES, "hash-edge", seed)
    site_sketches = [factory().consume_batch(shard) for shard in shards]
    v2_site = [dump_sketch(s) for s in site_sketches]
    v1_site = [_dump_v1(s) for s in site_sketches]

    # Cumulative checkpoint payloads: prefix sketches at epoch bounds.
    bounds = [len(batch) * (e + 1) // EPOCHS for e in range(EPOCHS)]
    prefixes = [factory().consume_batch(batch.slice(0, b)) for b in bounds]
    v2_cum = [dump_sketch(s) for s in prefixes]
    v1_cum = [_dump_v1(s) for s in prefixes]

    # -- coordinator: one merge per site per epoch --------------------------
    def arena_merges():
        last = None
        for _epoch in range(EPOCHS):
            coordinator = factory()
            for payload in v2_site:
                merge_sketch_bytes(coordinator, payload)
            last = coordinator
        return last

    def legacy_merges():
        last = None
        for _epoch in range(EPOCHS):
            coordinator = factory()
            for payload in v1_site:
                _legacy_combine(
                    coordinator, load_sketch(payload, like=coordinator),
                    "merge",
                )
            last = coordinator
        return last

    t0 = time.perf_counter()
    legacy_coord = legacy_merges()
    legacy_merge_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    arena_coord = arena_merges()
    arena_merge_s = time.perf_counter() - t0

    # -- temporal engine: suffix-window sweep by subtraction ----------------
    def arena_windows():
        out = []
        for t1 in range(1, EPOCHS):
            window = load_sketch(v2_cum[-1])
            subtract_sketch_bytes(window, v2_cum[t1 - 1])
            out.append(window)
        return out

    def legacy_windows():
        out = []
        for t1 in range(1, EPOCHS):
            window = load_sketch(v1_cum[-1])
            _legacy_combine(window, load_sketch(v1_cum[t1 - 1]), "subtract")
            out.append(window)
        return out

    t0 = time.perf_counter()
    legacy_wins = legacy_windows()
    legacy_sub_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    arena_wins = arena_windows()
    arena_sub_s = time.perf_counter() - t0

    # Both paths are byte-identical — the refactor changed the layout,
    # not one cell of the algebra.
    assert dump_sketch(arena_coord) == dump_sketch(legacy_coord)
    for mine, theirs in zip(arena_wins[:1] + arena_wins[-1:],
                            legacy_wins[:1] + legacy_wins[-1:]):
        assert dump_sketch(mine) == dump_sketch(theirs)

    # -- serialisation: dump/load one site sketch both ways -----------------
    t0 = time.perf_counter()
    for _ in range(3):
        _dump_v1(site_sketches[0])
    legacy_dump_s = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for _ in range(3):
        dump_sketch(site_sketches[0])
    arena_dump_s = (time.perf_counter() - t0) / 3

    merges = EPOCHS * SITES
    subtracts = EPOCHS - 1
    legacy_total = legacy_merge_s + legacy_sub_s
    arena_total = arena_merge_s + arena_sub_s
    speedup = legacy_total / arena_total
    arena_table.add_row(
        "coordinator merge", merges, round(legacy_merge_s, 3),
        round(arena_merge_s, 3), round(legacy_merge_s / arena_merge_s, 2),
    )
    arena_table.add_row(
        "window subtract", subtracts, round(legacy_sub_s, 3),
        round(arena_sub_s, 3), round(legacy_sub_s / arena_sub_s, 2),
    )
    arena_table.add_row(
        "merge+subtract total", merges + subtracts, round(legacy_total, 3),
        round(arena_total, 3), round(speedup, 2),
    )
    arena_table.add_row(
        "dump_sketch", 1, round(legacy_dump_s, 4), round(arena_dump_s, 4),
        round(legacy_dump_s / arena_dump_s, 2),
    )

    write_bench_json(
        "arena",
        rows=[
            {"phase": "merge", "ops": merges, "legacy_s": legacy_merge_s,
             "arena_s": arena_merge_s},
            {"phase": "subtract", "ops": subtracts,
             "legacy_s": legacy_sub_s, "arena_s": arena_sub_s},
            {"phase": "dump", "ops": 1, "legacy_s": legacy_dump_s,
             "arena_s": arena_dump_s,
             "payload_bytes_v1": len(v1_site[0]),
             "payload_bytes_v2": len(v2_site[0])},
        ],
        gates=[{
            "name": "merge_subtract_speedup",
            "value": round(speedup, 3),
            "threshold": GATE,
            "enforced": True,
            "pass": bool(speedup >= GATE),
        }],
        quick=quick,
    )
    assert speedup >= GATE, (
        f"arena merge+subtract only {speedup:.2f}x faster than the "
        f"pre-arena pipeline at K={SITES}×{EPOCHS} epochs (gate: {GATE}x)"
    )
    if not quick:
        benchmark.pedantic(arena_windows, rounds=3, iterations=1)
    else:
        benchmark.pedantic(
            lambda: subtract_sketch_bytes(load_sketch(v2_cum[-1]), v2_cum[0]),
            rounds=1, iterations=1,
        )
