"""E6 — Baswana–Sen emulation (§5): (2k-1)-spanner in k batches.

Regenerates the stretch/size table (sketch vs offline construction)
and times full builds for k ∈ {2, 3} — each build replays the stream
k times, the adaptive-sketch cost model.
"""

from __future__ import annotations

import pytest
from conftest import run_table_once

from repro.core import BaswanaSenSpanner
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e6_table(benchmark, seed):
    """Regenerate and print the E6 table; stretch bound must hold."""
    table = run_table_once(benchmark, "e6", seed)
    for row in table.rows:
        assert row[7], f"stretch bound violated: {row}"


@pytest.mark.parametrize("k", [2, 3])
def test_bench_build(benchmark, seed, k):
    wl = make_workload("grid", seed=seed)

    def run():
        return BaswanaSenSpanner(
            wl.graph.n, k=k, source=HashSource(seed + k)
        ).build(wl.stream)

    rep = benchmark(run)
    assert rep.batches == k
