"""E7 — RECURSECONNECT (§5.1, Theorem 5.1): log k adaptive batches.

Regenerates the stretch/adaptivity/contraction table and times full
builds, including the k ablation (deeper k ⇒ fewer batches relative to
Baswana–Sen, looser stretch bound).
"""

from __future__ import annotations

import math

import pytest
from conftest import run_table_once

from repro.core import RecurseConnectSpanner
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e7_table(benchmark, seed):
    """Regenerate and print the E7 table; bound and adaptivity must hold."""
    table = run_table_once(benchmark, "e7", seed)
    for row in table.rows:
        assert row[7], f"stretch bound violated: {row}"
        assert row[2] <= row[3], f"too many adaptive batches: {row}"


@pytest.mark.parametrize("k", [2, 4, 8])
def test_bench_build(benchmark, seed, k):
    wl = make_workload("grid", seed=seed)

    def run():
        return RecurseConnectSpanner(
            wl.graph.n, k=k, source=HashSource(seed + k)
        ).build(wl.stream)

    rep = benchmark(run)
    assert rep.batches <= math.ceil(math.log2(k)) + 1
