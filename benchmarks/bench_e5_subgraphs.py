"""E5 — induced subgraphs (§4, Theorem 4.1).

Regenerates the γ_H accuracy table (sketch vs exact vs insert-only
Buriol baseline) and times the per-edge column-update cost — the
honest price of the tiny sketch — for k = 3 (vectorised) and k = 4
(generic path), the vectorisation ablation DESIGN.md calls out.
"""

from __future__ import annotations

from conftest import run_table_once

from repro.core import TRIANGLE, SubgraphSketch
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e5_table(benchmark, seed):
    """Regenerate and print the E5 table; additive errors must be small."""
    table = run_table_once(benchmark, "e5", seed)
    sketch_rows = [r for r in table.rows if r[1] in ("triangle", "path3")]
    for row in sketch_rows:
        assert row[5] <= 0.2, f"γ additive error too large: {row}"


def test_bench_stream_pass_k3(benchmark, seed):
    """Vectorised k=3 update path."""
    wl = make_workload("triangles", seed=seed)

    def run():
        SubgraphSketch(
            wl.graph.n, order=3, samplers=64, source=HashSource(seed)
        ).consume(wl.stream)

    benchmark(run)


def test_bench_stream_pass_k4(benchmark, seed):
    """Generic-k update path (ablation vs the k=3 fast path)."""
    wl = make_workload("er-small", seed=seed)

    def run():
        SubgraphSketch(
            wl.graph.n, order=4, samplers=16, source=HashSource(seed)
        ).consume(wl.stream)

    benchmark(run)


def test_bench_estimate(benchmark, seed):
    wl = make_workload("triangles", seed=seed)
    sk = SubgraphSketch(
        wl.graph.n, order=3, samplers=128, source=HashSource(seed)
    ).consume(wl.stream)
    benchmark(sk.estimate, TRIANGLE)
