"""E4 — weighted sparsification (§3.5, Theorem 3.8).

Regenerates the weight-class table and times the class-routing stream
pass against the per-class post-processing.
"""

from __future__ import annotations

from conftest import run_table_once

from repro.core import WeightedSparsification
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e4_table(benchmark, seed):
    """Regenerate and print the E4 table; quality must be within ε-ish."""
    table = run_table_once(benchmark, "e4", seed)
    for row in table.rows:
        assert row[5] <= 1.0, f"weighted cut error out of range: {row}"


def test_bench_stream_pass(benchmark, seed):
    wl = make_workload("weighted", seed=seed)

    def run():
        WeightedSparsification(
            wl.graph.n, max_weight=16, epsilon=0.5,
            source=HashSource(seed), c_k=0.3,
        ).consume(wl.stream)

    benchmark(run)


def test_bench_postprocess(benchmark, seed):
    wl = make_workload("weighted", seed=seed)
    sk = WeightedSparsification(
        wl.graph.n, max_weight=16, epsilon=0.5,
        source=HashSource(seed), c_k=0.3,
    ).consume(wl.stream)
    benchmark(sk.sparsifier)
