"""Sharded sketching — communication accounting and parallel speed-up.

Times the :class:`~repro.distributed.ShardedSketchRunner` on the
standard workloads at ``K = 4`` sites: once with in-process sequential
site execution and once on the persistent shared-memory worker pool.
Both modes produce bit-identical coordinator sketches (pinned by
``tests/test_distributed_equivalence.py``); here we check the *systems*
claims:

* ``process_cold_s`` pays pool spawn + segment creation (first run);
  ``process_s`` is the warm steady state every subsequent
  ``run()``/``run_epochs()`` on the same runner sees — that is the
  number the gates judge, because a deployment amortises startup.
* ``parallel_not_slower_*`` — warm process mode must beat sequential
  even on one core: workers fold deltas in place and ship ``(site,
  nbytes, seconds)`` handles, skipping sequential's per-site
  serialise → verify → inflate round-trip entirely.
* ``scaling_k4_*`` — warm speed-up at K=4 must reach ``0.7 × min(K,
  cores)``: the ≥0.7×K scaling claim on machines with ≥K cores,
  degrading honestly to 0.7 on a 1-core runner.  K=2 and K=8 rows are
  recorded alongside for the scaling trend (K=8 oversubscribes small
  runners, so it is telemetry, not a gate).

Gates are enforced by default (quick/CI runs included).  On runners
too constrained to amortise pool overhead, ``--no-enforce`` records
telemetry without failing the build — the documented escape hatch.
"""

from __future__ import annotations

import functools
import os
import time

import pytest
from conftest import print_table, write_bench_json

from repro.distributed import (
    ShardedSketchRunner,
    mincut_sketch,
    sparsifier_sketch,
)
from repro.eval import Table, make_workload
from repro.sketch import dump_sketch

SITES = 4
_ROWS: list = []


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _scaling_threshold() -> float:
    """0.7 × the core-bounded ideal speed-up at K=4."""
    return round(0.7 * min(SITES, _available_cores()), 2)


@pytest.fixture(scope="module")
def distribute_table(quick, enforce):
    table = Table(
        "DISTRIBUTE: K=4 sharded runs — bytes shipped and wall-clock by mode",
        ["sketch", "tokens", "bytes/site (max)", "sequential s",
         "cold s", "warm s", "× (K=4)", "× (K=2)", "× (K=8)"],
    )
    yield table
    table.add_note(
        f"Measured with {_available_cores()} CPU core(s); 'warm s' reuses "
        "the persistent pool + shared segments ('cold s' includes their "
        "creation).  Gates: warm ≥ sequential and ≥0.7×min(K, cores) "
        "scaling at K=4"
        + ("." if enforce else " — recorded only (--no-enforce).")
    )
    print_table(table, name=None if quick else "distribute")
    gates = []
    for row in _ROWS:
        gates.append({
            "name": f"parallel_not_slower_{row['sketch']}",
            "value": round(row["parallel_ratio"], 3),
            "threshold": 1.0,
            "enforced": enforce,
            "pass": bool(not enforce or row["parallel_ratio"] >= 1.0),
        })
        gates.append({
            "name": f"scaling_k4_{row['sketch']}",
            "value": round(row["parallel_ratio"], 3),
            "threshold": _scaling_threshold(),
            "enforced": enforce,
            "pass": bool(
                not enforce or row["parallel_ratio"] >= _scaling_threshold()
            ),
        })
    write_bench_json("distribute", rows=_ROWS, gates=gates, quick=quick)


def _timed_run(runner, stream):
    t0 = time.perf_counter()
    report = runner.run(stream)
    return report, time.perf_counter() - t0


def _run_modes(factory, stream):
    """Sequential vs cold/warm process runs at K=4, plus a warm K=2 run."""
    seq_runner = ShardedSketchRunner(factory, sites=SITES, mode="sequential")
    seq_report, seq_s = _timed_run(seq_runner, stream)

    with ShardedSketchRunner(factory, sites=SITES, mode="process") as parallel:
        par_report, cold_s = _timed_run(parallel, stream)
        # Steady state: the pool, the workers' warm sketches, and the
        # shared segments all exist — best of two to shrug off one
        # scheduling hiccup.
        par_report, warm_a = _timed_run(parallel, stream)
        _, warm_b = _timed_run(parallel, stream)
        warm_s = min(warm_a, warm_b)
        assert dump_sketch(seq_report.sketch) == dump_sketch(par_report.sketch)

    with ShardedSketchRunner(factory, sites=2, mode="process") as two_site:
        two_site.run(stream)
        _, warm2_s = _timed_run(two_site, stream)

    with ShardedSketchRunner(factory, sites=8, mode="process") as eight_site:
        eight_site.run(stream)
        _, warm8_s = _timed_run(eight_site, stream)

    return seq_report, seq_s, cold_s, warm_s, warm2_s, warm8_s


@pytest.mark.parametrize(
    "name,maker",
    [("mincut", mincut_sketch), ("simple-sparsifier", sparsifier_sketch)],
)
def test_bench_distribute_modes(
    benchmark, seed, quick, enforce, distribute_table, name, maker
):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    factory = functools.partial(maker, n, seed + 17)
    seq_report, seq_s, cold_s, warm_s, warm2_s, warm8_s = _run_modes(
        factory, wl.stream
    )
    ratio = seq_s / warm_s
    ratio2 = seq_s / warm2_s
    ratio8 = seq_s / warm8_s
    distribute_table.add_row(
        name, len(wl.stream), seq_report.max_payload_bytes,
        round(seq_s, 3), round(cold_s, 3), round(warm_s, 3),
        round(ratio, 2), round(ratio2, 2), round(ratio8, 2),
    )
    _ROWS.append({
        "sketch": name, "tokens": len(wl.stream),
        "max_payload_bytes": seq_report.max_payload_bytes,
        "total_payload_bytes": seq_report.total_payload_bytes,
        "sequential_s": seq_s, "process_cold_s": cold_s,
        "process_s": warm_s, "process_k2_s": warm2_s,
        "process_k8_s": warm8_s,
        "parallel_ratio": ratio, "parallel_ratio_k2": ratio2,
        "parallel_ratio_k8": ratio8,
        "cores": _available_cores(),
    })
    if enforce:
        assert warm_s <= seq_s, (
            f"warm process mode ({warm_s:.2f}s) slower than sequential "
            f"({seq_s:.2f}s) at K={SITES}"
        )
        assert ratio >= _scaling_threshold(), (
            f"K={SITES} speed-up {ratio:.2f}× below the scaling gate "
            f"{_scaling_threshold()}× (0.7 × min(K, cores))"
        )
    if not quick:
        benchmark.pedantic(
            lambda: ShardedSketchRunner(
                factory, sites=SITES, mode="sequential"
            ).run(wl.stream),
            rounds=1, iterations=1,
        )
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
