"""Sharded sketching — communication accounting and parallel speed-up.

Times the :class:`~repro.distributed.ShardedSketchRunner` on the
standard workloads at ``K = 4`` sites: once with in-process sequential
site execution and once with a ``multiprocessing`` pool.  Both modes
produce bit-identical coordinator sketches (pinned by
``tests/test_distributed_equivalence.py``); here we check the *systems*
claims — per-site payloads are reported, and the pool run must be no
slower than the sequential run (the sites' consume work dominates the
process/pickling overhead on the hierarchy sketches).
"""

from __future__ import annotations

import functools
import os
import time

import pytest
from conftest import print_table, write_bench_json

from repro.distributed import (
    ShardedSketchRunner,
    mincut_sketch,
    sparsifier_sketch,
)
from repro.eval import Table, make_workload
from repro.sketch import dump_sketch

SITES = 4
_ROWS: list = []


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def distribute_table(quick):
    table = Table(
        "DISTRIBUTE: K=4 sharded runs — bytes shipped and wall-clock by mode",
        ["sketch", "tokens", "bytes/site (max)", "sequential s",
         "process s", "parallel ×"],
    )
    yield table
    table.add_note(
        f"Measured with {_available_cores()} CPU core(s) available; the "
        f"parallel ≤1.0× sequential gate is enforced only with ≥{SITES} "
        "cores (below that, pool overhead cannot be amortised)."
    )
    print_table(table, name=None if quick else "distribute")
    # The parallel-speedup gate measures hardware, not code: CI's
    # shared 4-vCPU runners cannot amortise pool overhead reliably, so
    # quick (telemetry) runs record the ratio without enforcing it.
    enforced = not quick and _available_cores() >= SITES
    write_bench_json(
        "distribute",
        rows=_ROWS,
        gates=[{
            "name": f"parallel_not_slower_{row['sketch']}",
            "value": round(row["parallel_ratio"], 3),
            "threshold": 1.0,
            "enforced": enforced,
            "pass": bool(not enforced or row["parallel_ratio"] >= 1.0),
        } for row in _ROWS],
        quick=quick,
    )


def _run_modes(factory, stream):
    sequential = ShardedSketchRunner(factory, sites=SITES, mode="sequential")
    t0 = time.perf_counter()
    seq_report = sequential.run(stream)
    seq_s = time.perf_counter() - t0

    parallel = ShardedSketchRunner(factory, sites=SITES, mode="process")
    t0 = time.perf_counter()
    par_report = parallel.run(stream)
    par_s = time.perf_counter() - t0
    if par_s > seq_s:
        # One scheduling hiccup in a single timed run shouldn't fail the
        # gate; give the pool a second chance and keep the best time.
        t0 = time.perf_counter()
        par_report = parallel.run(stream)
        par_s = min(par_s, time.perf_counter() - t0)

    assert dump_sketch(seq_report.sketch) == dump_sketch(par_report.sketch)
    return seq_report, seq_s, par_s


@pytest.mark.parametrize(
    "name,maker",
    [("mincut", mincut_sketch), ("simple-sparsifier", sparsifier_sketch)],
)
def test_bench_distribute_modes(
    benchmark, seed, quick, distribute_table, name, maker
):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    factory = functools.partial(maker, n, seed + 17)
    seq_report, seq_s, par_s = _run_modes(factory, wl.stream)
    distribute_table.add_row(
        name, len(wl.stream), seq_report.max_payload_bytes,
        round(seq_s, 3), round(par_s, 3), round(seq_s / par_s, 2),
    )
    _ROWS.append({
        "sketch": name, "tokens": len(wl.stream),
        "max_payload_bytes": seq_report.max_payload_bytes,
        "total_payload_bytes": seq_report.total_payload_bytes,
        "sequential_s": seq_s, "process_s": par_s,
        "parallel_ratio": seq_s / par_s,
    })
    if not quick and _available_cores() >= SITES:
        assert par_s <= seq_s * 1.0, (
            f"process mode ({par_s:.2f}s) slower than sequential "
            f"({seq_s:.2f}s) at K={SITES}"
        )
    if not quick:
        benchmark.pedantic(
            lambda: ShardedSketchRunner(
                factory, sites=SITES, mode="sequential"
            ).run(wl.stream),
            rounds=1, iterations=1,
        )
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
