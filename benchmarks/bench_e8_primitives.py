"""E8 — sketch primitives (§2.3, §3.4).

Regenerates the primitive-behaviour table (sampler uniformity and FAIL
rate, recovery boundary, hash backends) and times the primitives that
dominate every algorithm's cost: bank scatter updates, ℓ₀ sampling,
k-RECOVERY decoding, and the three hash backends (the §3.4 ablation:
oracle vs limited independence vs Nisan PRG).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_table_once

from repro.hashing import HashSource, KWiseHash, NisanPRG
from repro.sketch import L0SamplerBank, SparseRecovery


def test_e8_table(benchmark, seed):
    """Regenerate and print the E8 table; primitive guarantees must hold."""
    table = run_table_once(benchmark, "e8", seed)
    metrics = {(r[0], r[2]): r[3] for r in table.rows}
    assert metrics[("l0-sampler", "fail rate")] <= 0.05
    assert metrics[("k-recovery", "exact-decode rate")] >= 0.95
    assert metrics[("k-recovery", "honest-FAIL rate")] >= 0.95


def test_bench_bank_updates(benchmark, seed):
    """Scatter throughput: 10k update rows into a 64×32 sampler bank."""
    bank = L0SamplerBank(
        families=64, samplers=32, domain=100_000, source=HashSource(seed)
    )
    rng = np.random.default_rng(seed)
    fams = rng.integers(0, 64, size=10_000)
    smps = rng.integers(0, 32, size=10_000)
    items = rng.integers(0, 100_000, size=10_000)
    deltas = rng.choice([-1, 1], size=10_000)
    benchmark(bank.update, fams, smps, items, deltas)


def test_bench_l0_sample(benchmark, seed):
    bank = L0SamplerBank(
        families=1, samplers=1, domain=100_000, source=HashSource(seed)
    )
    items = np.arange(0, 100_000, 97)
    bank.update(
        np.zeros(items.size, dtype=int),
        np.zeros(items.size, dtype=int),
        items,
        np.ones(items.size, dtype=int),
    )
    benchmark(bank.sample, 0, 0)


def test_bench_sparse_recovery_decode(benchmark, seed):
    sr = SparseRecovery(1_000_000, k=32, source=HashSource(seed))
    rng = np.random.default_rng(seed)
    items = rng.choice(1_000_000, size=32, replace=False)
    sr.update_many(items, np.ones(32, dtype=int))
    benchmark(sr.decode)


@pytest.mark.parametrize(
    "backend",
    ["splitmix", "kwise4", "nisan"],
)
def test_bench_hash_backends(benchmark, seed, backend):
    """Hash 100k keys with each §3.4 randomness option."""
    keys = np.arange(100_000, dtype=np.int64)
    if backend == "splitmix":
        h = HashSource(seed)
    elif backend == "kwise4":
        h = KWiseHash(4, HashSource(seed))
    else:
        h = NisanPRG(24, HashSource(seed))
    benchmark(h.hash64, keys)
