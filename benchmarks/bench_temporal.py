"""Temporal window materialisation — checkpoint subtraction vs replay.

The operational claim of the temporal subsystem: once per-epoch
cumulative checkpoints exist, materialising any epoch-aligned window is
two checkpoint loads and one subtraction — O(sketch size) — while the
no-checkpoint alternative replays every stream token in the window.  On
a long stream split into 16 epochs the subtraction path must beat
replay by at least 5× summed over a full sweep of suffix windows
(equivalence of the two paths is pinned byte-for-byte by
``tests/test_temporal_equivalence.py``).
"""

from __future__ import annotations

import functools
import time

import pytest
from conftest import print_table, write_bench_json

from repro.distributed import forest_sketch
from repro.eval import Table
from repro.sketch import dump_sketch
from repro.streams import erdos_renyi_graph, stream_from_edges
from repro.temporal import EpochManager, TemporalQueryEngine

EPOCHS = 16
GATE = 5.0


@pytest.fixture(scope="module")
def temporal_table(quick):
    table = Table(
        "TEMPORAL: window materialisation — checkpoint subtraction vs replay",
        ["windows", "tokens", "epochs", "replay s", "subtract s", "speedup"],
    )
    yield table
    print_table(table, name=None if quick else "temporal")


def _long_stream(seed: int):
    """A churn-heavy stream long enough that replay cost dominates."""
    n = 48
    edges = erdos_renyi_graph(n, 0.35, seed=seed)
    stream = stream_from_edges(n, edges)
    for _cycle in range(40):
        for u, v in edges:
            stream.delete(u, v)
        for u, v in edges:
            stream.insert(u, v)
    return n, stream


def test_bench_window_vs_replay(benchmark, seed, quick, temporal_table):
    n, stream = _long_stream(seed)
    factory = functools.partial(forest_sketch, n, seed + 5)
    timeline = EpochManager.consume(factory, stream, epochs=EPOCHS)
    engine = TemporalQueryEngine(timeline)
    batch = stream.as_batch()
    windows = [(t, EPOCHS) for t in range(EPOCHS)]

    # Replay path: consume the window's tokens into a fresh sketch.
    t0 = time.perf_counter()
    replays = []
    for t1, t2 in windows:
        b1 = timeline.boundaries[t1 - 1] if t1 else 0
        sketch = factory()
        sketch.consume_batch(batch.slice(b1, timeline.boundaries[t2 - 1]))
        replays.append(sketch)
    replay_s = time.perf_counter() - t0

    # Checkpoint path: loads + subtraction, independent of window span.
    t0 = time.perf_counter()
    materialised = [engine.window_sketch(t1, t2) for t1, t2 in windows]
    subtract_s = time.perf_counter() - t0

    speedup = replay_s / subtract_s
    temporal_table.add_row(
        len(windows), len(stream), EPOCHS, replay_s, subtract_s, speedup,
    )
    # Both paths agree exactly (spot-check the widest and narrowest).
    for idx in (0, len(windows) - 1):
        assert dump_sketch(materialised[idx]) == dump_sketch(replays[idx])
    write_bench_json(
        "temporal",
        rows=[{
            "windows": len(windows), "tokens": len(stream),
            "epochs": EPOCHS, "replay_s": replay_s,
            "subtract_s": subtract_s, "speedup": speedup,
            "manifest_bytes": timeline.total_payload_bytes,
        }],
        gates=[{
            "name": "window_vs_replay_speedup",
            "value": round(speedup, 3),
            "threshold": GATE,
            "enforced": True,
            "pass": bool(speedup >= GATE),
        }],
        quick=quick,
    )
    assert speedup >= GATE, (
        f"window materialisation only {speedup:.1f}x faster than replay "
        f"at {EPOCHS} epochs (gate: {GATE}x)"
    )
    benchmark.pedantic(
        lambda: engine.window_sketch(EPOCHS // 2, EPOCHS),
        rounds=1 if quick else 5, iterations=1,
    )
