"""Temporal window materialisation — checkpoint subtraction vs replay,
and durable-store paging at T=1024.

Two operational claims of the temporal subsystem:

* Once per-epoch cumulative checkpoints exist, materialising any
  epoch-aligned window is two checkpoint loads and one subtraction —
  O(sketch size) — while the no-checkpoint alternative replays every
  stream token in the window.  On a long stream split into 16 epochs
  the subtraction path must beat replay by at least 5× summed over a
  full sweep of suffix windows.
* A dyadically-compacted :class:`~repro.temporal.store.EpochStore`
  answers any window over T=1024 epochs by merging O(log T) delta
  spans paged in lazily: the plan never exceeds ``2·log2(T) + 2``
  segments, the bytes a window touches stay far below the full
  cumulative manifest, and resident memory stays under the paging
  budget however many windows are swept.

Equivalence of all paths is pinned byte-for-byte by
``tests/test_temporal_equivalence.py`` and ``tests/test_epoch_store.py``;
both tests here still spot-check it on the benchmarked workloads.

Both tests contribute rows and gates to one ``BENCH_temporal.json``
(:func:`write_bench_json` overwrites per call, so the module fixture
collects and writes once).
"""

from __future__ import annotations

import functools
import math
import time

import pytest
from conftest import print_table, write_bench_json

from repro.distributed import forest_sketch
from repro.eval import Table
from repro.sketch import dump_sketch
from repro.streams import erdos_renyi_graph, stream_from_edges
from repro.temporal import (
    EpochManager,
    EpochStore,
    TemporalQueryEngine,
    materialise_window,
)

EPOCHS = 16
GATE = 5.0

STORE_EPOCHS = 1024
#: Paging budget for the T=1024 sweep — small enough that the sweep
#: must evict (total store ≈ 6 MB), so the bound is actually exercised.
STORE_CACHE_BYTES = 1 << 18
#: A dyadic cover of any window needs at most ~2 spans per level.
LOAD_GATE = 2 * int(math.log2(STORE_EPOCHS)) + 2
#: Window bytes vs shipping the full cumulative-checkpoint manifest.
SUBLINEAR_GATE = 4.0


@pytest.fixture(scope="module")
def temporal_json(quick):
    """Accumulate rows/gates from every test; persist once at teardown."""
    record: dict = {"rows": [], "gates": []}
    yield record
    write_bench_json(
        "temporal", rows=record["rows"], gates=record["gates"], quick=quick
    )


@pytest.fixture(scope="module")
def temporal_table(quick):
    table = Table(
        "TEMPORAL: window materialisation — checkpoint subtraction vs replay",
        ["windows", "tokens", "epochs", "replay s", "subtract s", "speedup"],
    )
    yield table
    print_table(table, name=None if quick else "temporal")


@pytest.fixture(scope="module")
def store_table(quick):
    table = Table(
        "TEMPORAL-STORE: dyadic paging at T=1024",
        ["epochs", "spans", "store MB", "manifest MB", "max loads",
         "max win KB", "resident KB", "window ms"],
    )
    yield table
    print_table(table, name=None if quick else "temporal_store")


def _long_stream(seed: int):
    """A churn-heavy stream long enough that replay cost dominates.

    "Long enough" moved with the kernel backend: columnar replay now
    ingests ~10× more tokens per second than the pre-kernel loops,
    while the subtraction path stays O(sketch size) per window — so
    the cycle count is sized for the accelerated replay baseline to
    keep the 5× gate meaningfully exercised.
    """
    n = 48
    edges = erdos_renyi_graph(n, 0.35, seed=seed)
    stream = stream_from_edges(n, edges)
    for _cycle in range(120):
        for u, v in edges:
            stream.delete(u, v)
        for u, v in edges:
            stream.insert(u, v)
    return n, stream


def test_bench_window_vs_replay(benchmark, seed, quick, temporal_table,
                                temporal_json):
    n, stream = _long_stream(seed)
    factory = functools.partial(forest_sketch, n, seed + 5)
    timeline = EpochManager.consume(factory, stream, epochs=EPOCHS)
    engine = TemporalQueryEngine(timeline)
    batch = stream.as_batch()
    windows = [(t, EPOCHS) for t in range(EPOCHS)]

    # Replay path: consume the window's tokens into a fresh sketch.
    t0 = time.perf_counter()
    replays = []
    for t1, t2 in windows:
        b1 = timeline.boundaries[t1 - 1] if t1 else 0
        sketch = factory()
        sketch.consume_batch(batch.slice(b1, timeline.boundaries[t2 - 1]))
        replays.append(sketch)
    replay_s = time.perf_counter() - t0

    # Checkpoint path: loads + subtraction, independent of window span.
    t0 = time.perf_counter()
    materialised = [engine.window_sketch(t1, t2) for t1, t2 in windows]
    subtract_s = time.perf_counter() - t0

    speedup = replay_s / subtract_s
    temporal_table.add_row(
        len(windows), len(stream), EPOCHS, replay_s, subtract_s, speedup,
    )
    # Both paths agree exactly (spot-check the widest and narrowest).
    for idx in (0, len(windows) - 1):
        assert dump_sketch(materialised[idx]) == dump_sketch(replays[idx])
    temporal_json["rows"].append({
        "windows": len(windows), "tokens": len(stream),
        "epochs": EPOCHS, "replay_s": replay_s,
        "subtract_s": subtract_s, "speedup": speedup,
        "manifest_bytes": timeline.total_payload_bytes,
    })
    temporal_json["gates"].append({
        "name": "window_vs_replay_speedup",
        "value": round(speedup, 3),
        "threshold": GATE,
        "enforced": True,
        "pass": bool(speedup >= GATE),
    })
    assert speedup >= GATE, (
        f"window materialisation only {speedup:.1f}x faster than replay "
        f"at {EPOCHS} epochs (gate: {GATE}x)"
    )
    benchmark.pedantic(
        lambda: engine.window_sketch(EPOCHS // 2, EPOCHS),
        rounds=1 if quick else 5, iterations=1,
    )


def test_bench_store_window_paging(benchmark, seed, quick, store_table,
                                   temporal_json, tmp_path):
    """T=1024 durable store: O(log T) loads, sublinear bytes, bounded RSS."""
    n = 16
    edges = erdos_renyi_graph(n, 0.5, seed=seed)
    stream = stream_from_edges(n, edges)
    while len(stream) < 2 * STORE_EPOCHS:
        for u, v in edges:
            stream.delete(u, v)
        for u, v in edges:
            stream.insert(u, v)
    factory = functools.partial(forest_sketch, n, seed + 5)
    timeline = EpochManager.consume(factory, stream, epochs=STORE_EPOCHS)
    manifest_bytes = timeline.total_payload_bytes
    store = EpochStore.from_timeline(tmp_path / "store", timeline, horizon=0)

    # Reopen cold with a small paging budget: every load hits the disk
    # first, and the sweep must evict to stay under the cap.
    paged = EpochStore.open(tmp_path / "store",
                            cache_bytes=STORE_CACHE_BYTES)
    step = STORE_EPOCHS // 64
    windows = [(t, STORE_EPOCHS) for t in range(0, STORE_EPOCHS, step)]
    windows += [(t, t + 130) for t in range(0, STORE_EPOCHS - 130, 97)]

    max_loads = max(len(paged.plan_window(t1, t2)) for t1, t2 in windows)
    max_window_bytes = max(
        paged.window_payload_bytes(t1, t2) for t1, t2 in windows
    )
    t0 = time.perf_counter()
    for t1, t2 in windows:
        paged.window_sketch(t1, t2)
    window_s = time.perf_counter() - t0
    window_ms = window_s * 1000 / len(windows)
    resident = paged.resident_bytes
    sublinear = manifest_bytes / max_window_bytes

    store_table.add_row(
        STORE_EPOCHS, store.span_count, store.total_bytes / 1e6,
        manifest_bytes / 1e6, max_loads, max_window_bytes / 1e3,
        resident / 1e3, window_ms,
    )
    # The paged answers are the exact timeline answers.
    for t1, t2 in (windows[0], windows[-1], (STORE_EPOCHS // 2 - 1,
                                             STORE_EPOCHS // 2 + 1)):
        assert dump_sketch(paged.window_sketch(t1, t2)) == \
            dump_sketch(materialise_window(timeline, t1, t2))

    temporal_json["rows"].append({
        "epochs": STORE_EPOCHS, "tokens": len(stream),
        "spans": store.span_count, "store_bytes": store.total_bytes,
        "manifest_bytes": manifest_bytes, "windows": len(windows),
        "max_window_loads": max_loads,
        "max_window_bytes": max_window_bytes,
        "window_ms": round(window_ms, 3),
        "cache_bytes": STORE_CACHE_BYTES,
        "resident_bytes": resident, "disk_loads": paged.disk_loads,
    })
    temporal_json["gates"] += [
        {
            "name": "window_loads_logT",
            "value": max_loads,
            "threshold": LOAD_GATE,
            "enforced": True,
            "pass": bool(max_loads <= LOAD_GATE),
        },
        {
            "name": "window_sublinear",
            "value": round(sublinear, 2),
            "threshold": SUBLINEAR_GATE,
            "enforced": True,
            "pass": bool(sublinear >= SUBLINEAR_GATE),
        },
        {
            "name": "resident_bytes_bounded",
            "value": resident,
            "threshold": STORE_CACHE_BYTES,
            "enforced": True,
            "pass": bool(resident <= STORE_CACHE_BYTES),
        },
    ]
    assert max_loads <= LOAD_GATE, (
        f"a window needed {max_loads} span loads at T={STORE_EPOCHS} "
        f"(dyadic bound: {LOAD_GATE})"
    )
    assert sublinear >= SUBLINEAR_GATE, (
        f"worst window touched 1/{sublinear:.1f} of the manifest "
        f"(gate: 1/{SUBLINEAR_GATE})"
    )
    assert resident <= STORE_CACHE_BYTES, (
        f"resident {resident} bytes exceeds the {STORE_CACHE_BYTES}-byte "
        "paging budget"
    )
    benchmark.pedantic(
        lambda: paged.window_sketch(STORE_EPOCHS // 2, STORE_EPOCHS),
        rounds=1 if quick else 5, iterations=1,
    )
