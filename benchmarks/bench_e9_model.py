"""E9 — stream-model claims (§1.1): cancellation, merging, throughput.

Regenerates the model-claims table and times the operations the model
story depends on: per-token updates, sketch merging, and the scaling of
update throughput with the sketch's round budget.
"""

from __future__ import annotations

import pytest
from conftest import run_table_once

from repro.core import SpanningForestSketch
from repro.eval import make_workload
from repro.hashing import HashSource


def test_e9_table(benchmark, seed):
    """Regenerate and print the E9 table; exactness claims must hold."""
    table = run_table_once(benchmark, "e9", seed)
    flags = {(r[0], r[2]): r[3] for r in table.rows}
    assert flags[("deletions cancel", "sketches bit-identical")]
    assert flags[("distributed merge", "merged == direct")]


def test_bench_consume_stream(benchmark, seed):
    wl = make_workload("er-small", seed=seed)

    def run():
        SpanningForestSketch(wl.graph.n, HashSource(seed)).consume(wl.stream)

    benchmark(run)


def test_bench_merge(benchmark, seed):
    wl = make_workload("er-small", seed=seed)
    a = SpanningForestSketch(wl.graph.n, HashSource(seed)).consume(wl.stream)
    b = SpanningForestSketch(wl.graph.n, HashSource(seed)).consume(wl.stream)
    benchmark(a.merge, b)


@pytest.mark.parametrize("rounds", [4, 8, 16])
def test_bench_rounds_scaling(benchmark, seed, rounds):
    """Update cost scales linearly with the sketch's round budget."""
    wl = make_workload("er-small", seed=seed)

    def run():
        SpanningForestSketch(
            wl.graph.n, HashSource(seed), rounds=rounds
        ).consume(wl.stream)

    benchmark(run)
