"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_eX_*.py`` regenerates the table of experiment X — timed
once via ``benchmark.pedantic`` so it participates in ``--benchmark-
only`` runs — and times its computational phases with pytest-benchmark.
Tables are printed (visible with ``-s``) **and** persisted to
``benchmarks/output/<experiment>.md``; EXPERIMENTS.md archives
representative copies.

The systems benchmarks (``bench_ingest``, ``bench_distribute``,
``bench_temporal``, ``bench_arena``) double as **perf telemetry**: they
accept ``--quick`` (trimmed workloads, no pedantic re-runs — the mode
CI's ``perf`` job uses on every push) and persist a machine-readable
``BENCH_<name>.json`` at the repo root via :func:`write_bench_json`.
Their speedup gates stay enforced in quick mode, so a perf regression
fails the job rather than just drifting the numbers.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="trimmed benchmark workloads for CI perf telemetry",
    )
    parser.addoption(
        "--no-enforce",
        action="store_true",
        default=False,
        help="record benchmark gates as telemetry without failing on "
             "them (escape hatch for constrained runners)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """Whether the run is in CI-telemetry quick mode."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def enforce(request) -> bool:
    """Whether hardware-sensitive gates fail the run (default: yes)."""
    return not request.config.getoption("--no-enforce")


def write_bench_json(
    name: str,
    rows: "list[dict]",
    gates: "list[dict]",
    quick: bool,
) -> pathlib.Path:
    """Persist one benchmark's telemetry as ``BENCH_<name>.json``.

    Schema (also documented in README "Performance & CI"): ``rows`` are
    free-form per-measurement dicts (throughput, seconds, speedups,
    bytes); ``gates`` are ``{name, value, threshold, enforced, pass}``
    entries mirroring the assertions in the bench itself; the top-level
    ``pass`` is the AND of every enforced gate.
    """
    record = {
        "bench": name,
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "rows": rows,
        "gates": gates,
        "pass": all(g["pass"] for g in gates if g.get("enforced", True)),
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def print_table(table, name: str | None = None) -> None:
    """Print an experiment table and persist it under benchmarks/output/."""
    rendered = table.render()
    print()
    print(rendered)
    print()
    if name is not None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.md").write_text(rendered + "\n")


def run_table_once(benchmark, exp_id: str, seed: int):
    """Run an experiment exactly once under the benchmark harness."""
    from repro.eval import run_experiment

    table = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"quick": True, "seed": seed},
        rounds=1, iterations=1,
    )
    print_table(table, name=exp_id)
    return table


@pytest.fixture(scope="session")
def seed() -> int:
    """Fixed seed so benchmark workloads are reproducible."""
    return 2012  # the paper's year
