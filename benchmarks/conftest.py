"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_eX_*.py`` regenerates the table of experiment X — timed
once via ``benchmark.pedantic`` so it participates in ``--benchmark-
only`` runs — and times its computational phases with pytest-benchmark.
Tables are printed (visible with ``-s``) **and** persisted to
``benchmarks/output/<experiment>.md``; EXPERIMENTS.md archives
representative copies.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def print_table(table, name: str | None = None) -> None:
    """Print an experiment table and persist it under benchmarks/output/."""
    rendered = table.render()
    print()
    print(rendered)
    print()
    if name is not None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.md").write_text(rendered + "\n")


def run_table_once(benchmark, exp_id: str, seed: int):
    """Run an experiment exactly once under the benchmark harness."""
    from repro.eval import run_experiment

    table = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"quick": True, "seed": seed},
        rounds=1, iterations=1,
    )
    print_table(table, name=exp_id)
    return table


@pytest.fixture(scope="session")
def seed() -> int:
    """Fixed seed so benchmark workloads are reproducible."""
    return 2012  # the paper's year
