"""E10 — companion sketches (§1.2 / [4]).

Regenerates the companion-feature table (bipartiteness, k-edge-
connectivity, MST weight, cut queries — the primitives this paper
builds on) and times each sketch build, plus the serialisation
round-trip that the distributed deployment (§1.1) ships between sites.
"""

from __future__ import annotations

import numpy as np
from conftest import run_table_once

from repro.core import BipartitenessSketch, CutEdgesSketch, MSTWeightSketch
from repro.hashing import HashSource
from repro.sketch import dump_l0_bank, load_l0_bank
from repro.streams import (
    cycle_graph,
    dumbbell_graph,
    random_weighted_edges,
    stream_from_edges,
    weighted_churn_stream,
)


def test_e10_table(benchmark, seed):
    """Regenerate and print the E10 table; every answer must match exact."""
    table = run_table_once(benchmark, "e10", seed)
    for row in table.rows:
        assert row[3] == row[4], f"sketch answer differs from exact: {row}"


def test_bench_bipartiteness(benchmark, seed):
    n = 25
    stream = stream_from_edges(n, cycle_graph(n))

    def run():
        return BipartitenessSketch(n, HashSource(seed)).consume(stream)

    sk = benchmark(run)
    assert not sk.is_bipartite()  # odd cycle


def test_bench_mst_weight(benchmark, seed):
    n = 20
    wedges = random_weighted_edges(n, 0.4, 8, seed=seed)
    stream = weighted_churn_stream(n, wedges, seed=seed + 1)

    def run():
        sk = MSTWeightSketch(n, max_weight=8, source=HashSource(seed))
        sk.consume(stream)
        return sk.estimate()

    benchmark(run)


def test_bench_cut_queries(benchmark, seed):
    clique, bridges = 8, 3
    n = 2 * clique
    stream = stream_from_edges(n, dumbbell_graph(clique, bridges))
    sk = CutEdgesSketch(n, k=8, source=HashSource(seed)).consume(stream)
    side = set(range(clique))
    crossing = benchmark(sk.crossing_edges, side)
    assert len(crossing) == bridges


def test_bench_serialise_round_trip(benchmark, seed):
    """Dump + load an ℓ₀ bank — the §1.1 sketch-shipping cost."""
    from repro.sketch import L0SamplerBank

    bank = L0SamplerBank(
        families=16, samplers=32, domain=50_000, source=HashSource(seed)
    )
    rng = np.random.default_rng(seed)
    bank.update(
        rng.integers(0, 16, size=5000),
        rng.integers(0, 32, size=5000),
        rng.integers(0, 50_000, size=5000),
        rng.choice([-1, 1], size=5000),
    )

    def round_trip():
        return load_l0_bank(dump_l0_bank(bank))

    restored = benchmark(round_trip)
    assert (restored.bank.phi == bank.bank.phi).all()
