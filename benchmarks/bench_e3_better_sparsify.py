"""E3 — SPARSIFICATION (Fig. 3, Theorems 3.4/3.7).

Regenerates the simple-vs-better comparison table and times the three
distinctive phases of the Fig. 3 construction: the streaming pass, the
Gomory–Hu tree on the rough sparsifier, and the k-RECOVERY read-out of
all tree cuts.
"""

from __future__ import annotations

from conftest import run_table_once

from repro.core import Sparsification
from repro.eval import make_workload
from repro.graphs import gomory_hu_tree
from repro.hashing import HashSource


def test_e3_table(benchmark, seed):
    """Regenerate and print the E3 table; better must use fewer cells."""
    table = run_table_once(benchmark, "e3", seed)
    by_method = {row[1]: row for row in table.rows}
    assert by_method["better (Fig.3)"][5] < by_method["simple (Fig.2)"][5], (
        "Fig. 3 should hold fewer sketch cells than Fig. 2"
    )


def _built_sketch(seed):
    wl = make_workload("er-dense", seed=seed)
    sk = Sparsification(
        wl.graph.n, epsilon=0.5, source=HashSource(seed),
        c_k=0.3, c_rough=0.05, c_level=4.0,
    ).consume(wl.stream)
    return wl, sk


def test_bench_stream_pass(benchmark, seed):
    wl = make_workload("er-dense", seed=seed)

    def run():
        Sparsification(
            wl.graph.n, epsilon=0.5, source=HashSource(seed),
            c_k=0.3, c_rough=0.05, c_level=4.0,
        ).consume(wl.stream)

    benchmark(run)


def test_bench_gomory_hu_phase(benchmark, seed):
    """Time the Gomory–Hu tree on the rough sparsifier (step 4 input)."""
    _wl, sk = _built_sketch(seed)
    rough = sk.rough.sparsifier().graph
    benchmark(gomory_hu_tree, rough)


def test_bench_full_postprocess(benchmark, seed):
    """Time the complete step 4 (tree + recovery + assembly)."""
    _wl, sk = _built_sketch(seed)
    benchmark(sk.sparsifier)
