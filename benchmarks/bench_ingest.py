"""Ingestion throughput — columnar batched ``consume`` vs per-token ``update``.

The columnar engine (``DynamicGraphStream.as_batch`` + the sketches'
``consume_batch``) exists to make stream ingestion scale with numpy
scatter throughput instead of Python token overhead.  These benchmarks
time both paths on the standard workload for the two consumers the
refactor targets hardest — ``EdgeConnectivitySketch`` (k forest groups)
and ``SimpleSparsification`` (a whole subsampling hierarchy) — and
assert the batched path is at least 2× faster than the per-token
reference implementation.  Equivalence of the two paths is pinned
byte-for-byte by ``tests/test_batch_equivalence.py``.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table, write_bench_json

from repro.core import EdgeConnectivitySketch, SimpleSparsification
from repro.eval import Table, make_workload
from repro.hashing import HashSource

GATE = 2.0
_ROWS: list = []


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _speedup(make_sketch, stream) -> tuple[float, float, float]:
    """(token_seconds, batched_seconds, speedup) for one consume run."""
    reference = make_sketch()

    def tokenwise():
        for upd in stream:
            reference.update(upd)

    token_s = _time_once(tokenwise)
    batched_sketch = make_sketch()
    batched_s = _time_once(lambda: batched_sketch.consume(stream))
    return token_s, batched_s, token_s / batched_s


@pytest.fixture(scope="module")
def ingest_table(quick):
    table = Table(
        "INGEST: columnar batched consume vs per-token update (reference)",
        ["consumer", "tokens", "token-path s", "batched s", "speedup"],
    )
    yield table
    print_table(table, name=None if quick else "ingest")
    write_bench_json(
        "ingest",
        rows=_ROWS,
        gates=[{
            "name": f"ingest_speedup_{row['consumer']}",
            "value": round(row["speedup"], 3),
            "threshold": GATE,
            "enforced": True,
            "pass": bool(row["speedup"] >= GATE),
        } for row in _ROWS],
        quick=quick,
    )


def _record(consumer: str, tokens: int, token_s: float, batched_s: float,
            speedup: float) -> None:
    _ROWS.append({
        "consumer": consumer, "tokens": tokens, "token_s": token_s,
        "batched_s": batched_s, "speedup": speedup,
        "tokens_per_s": tokens / batched_s,
    })


def test_bench_ingest_edge_connect(benchmark, seed, quick, ingest_table):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    make = lambda: EdgeConnectivitySketch(n, 4, HashSource(seed + 1))  # noqa: E731
    token_s, batched_s, speedup = _speedup(make, wl.stream)
    ingest_table.add_row(
        "EdgeConnectivitySketch.consume", len(wl.stream), token_s, batched_s,
        speedup,
    )
    _record("edge_connect", len(wl.stream), token_s, batched_s, speedup)
    assert speedup >= GATE, f"batched ingest only {speedup:.1f}x faster"
    benchmark.pedantic(
        lambda: EdgeConnectivitySketch(n, 4, HashSource(seed + 1)).consume(
            wl.stream
        ),
        rounds=1 if quick else 3, iterations=1,
    )


def test_bench_ingest_simple_sparsify(benchmark, seed, quick, ingest_table):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    make = lambda: SimpleSparsification(  # noqa: E731
        n, epsilon=0.5, source=HashSource(seed + 2), c_k=0.3
    )
    token_s, batched_s, speedup = _speedup(make, wl.stream)
    ingest_table.add_row(
        "SimpleSparsification.consume", len(wl.stream), token_s, batched_s,
        speedup,
    )
    _record("simple_sparsify", len(wl.stream), token_s, batched_s, speedup)
    assert speedup >= GATE, f"batched ingest only {speedup:.1f}x faster"
    benchmark.pedantic(
        lambda: SimpleSparsification(
            n, epsilon=0.5, source=HashSource(seed + 2), c_k=0.3
        ).consume(wl.stream),
        rounds=1 if quick else 3, iterations=1,
    )
