"""Ingestion throughput — columnar batched ``consume`` vs per-token ``update``.

The columnar engine (``DynamicGraphStream.as_batch`` + the sketches'
``consume_batch``) exists to make stream ingestion scale with numpy
scatter throughput instead of Python token overhead, and the
``repro.kernels`` backend owns the scatter hot loops.  These benchmarks
measure two things per consumer:

* the batched/token-path **speedup** on the standard (small) workload,
  asserting the columnar path is at least 2× faster than the per-token
  reference implementation;
* the absolute batched **throughput** on a token-floored workload
  (``TOKENS_FLOOR`` concatenated ER streams) — small streams measure
  fixed per-call overhead, not scatter throughput, which is what the
  ``tokens_per_s`` gates pin.

Equivalence of the two paths is byte-for-byte (pinned by
``tests/test_batch_equivalence.py``), and every row records the active
kernel backend so regressions can be attributed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import print_table, write_bench_json

from repro.core import EdgeConnectivitySketch, SimpleSparsification
from repro.eval import Table, make_workload
from repro.hashing import HashSource
from repro.kernels import backend_name
from repro.streams import StreamBatch

GATE = 2.0
#: Minimum tokens in the throughput-measurement stream.  The quick
#: workload is only 408 tokens — far too small to exercise the batched
#: scatter path — so extra identically-distributed streams are
#: concatenated until the floor is met.
TOKENS_FLOOR = 16384
#: Absolute batched-throughput gates (tokens/second, numpy reference
#: backend, measured at TOKENS_FLOOR scale).  The simple_sparsify
#: threshold is 10x the pre-kernel batched baseline (452.8 tokens/s).
THROUGHPUT_GATES = {
    "edge_connect": 100_000.0,
    "simple_sparsify": 4_528.0,
}
_ROWS: list = []


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _speedup(make_sketch, stream) -> tuple[float, float, float]:
    """(token_seconds, batched_seconds, speedup) for one consume run."""
    reference = make_sketch()

    def tokenwise():
        for upd in stream:
            reference.update(upd)

    token_s = _time_once(tokenwise)
    batch = stream.as_batch()
    batched_sketch = make_sketch()
    batched_s = _time_once(lambda: batched_sketch.consume_batch(batch))
    return token_s, batched_s, token_s / batched_s


def _floored_batch(seed: int) -> StreamBatch:
    """One columnar batch of >= TOKENS_FLOOR tokens of ER workload.

    Distinct seeds per constituent stream keep the edge distribution
    honest (no artificial multiplicity blow-up on one repeated batch).
    """
    lo, hi, delta = [], [], []
    tokens = 0
    i = 0
    n = None
    while tokens < TOKENS_FLOOR:
        wl = make_workload("er-small", seed=seed + 1000 * i)
        b = wl.stream.as_batch()
        n = b.n
        lo.append(b.lo)
        hi.append(b.hi)
        delta.append(b.delta)
        tokens += b.lo.size
        i += 1
    return StreamBatch(
        n=n,
        lo=np.concatenate(lo),
        hi=np.concatenate(hi),
        delta=np.concatenate(delta),
    )


def _throughput(make_sketch, batch: StreamBatch, rounds: int) -> float:
    """Best-of-``rounds`` batched ingest throughput in tokens/second."""
    best = float("inf")
    for _ in range(rounds):
        sketch = make_sketch()
        best = min(best, _time_once(lambda: sketch.consume_batch(batch)))
    return batch.lo.size / best


@pytest.fixture(scope="module")
def ingest_table(quick):
    table = Table(
        "INGEST: columnar batched consume vs per-token update (reference)",
        ["consumer", "tokens", "token-path s", "batched s", "speedup",
         "floored tokens/s"],
    )
    yield table
    print_table(table, name=None if quick else "ingest")
    gates = [{
        "name": f"ingest_speedup_{row['consumer']}",
        "value": round(row["speedup"], 3),
        "threshold": GATE,
        "enforced": True,
        "pass": bool(row["speedup"] >= GATE),
    } for row in _ROWS]
    gates += [{
        "name": f"ingest_tokens_per_s_{row['consumer']}",
        "value": round(row["tokens_per_s"], 1),
        "threshold": THROUGHPUT_GATES[row["consumer"]],
        "enforced": True,
        "pass": bool(row["tokens_per_s"] >= THROUGHPUT_GATES[row["consumer"]]),
    } for row in _ROWS]
    gates += [{
        "name": f"ingest_tokens_floor_{row['consumer']}",
        "value": row["floored_tokens"],
        "threshold": TOKENS_FLOOR,
        "enforced": True,
        "pass": bool(row["floored_tokens"] >= TOKENS_FLOOR),
    } for row in _ROWS]
    write_bench_json("ingest", rows=_ROWS, gates=gates, quick=quick)


def _record(consumer: str, tokens: int, token_s: float, batched_s: float,
            speedup: float, floored_tokens: int, tokens_per_s: float) -> None:
    _ROWS.append({
        "consumer": consumer, "tokens": tokens, "token_s": token_s,
        "batched_s": batched_s, "speedup": speedup,
        "floored_tokens": floored_tokens, "tokens_per_s": tokens_per_s,
        "backend": backend_name(),
    })


def test_bench_ingest_edge_connect(benchmark, seed, quick, ingest_table):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    make = lambda: EdgeConnectivitySketch(n, 4, HashSource(seed + 1))  # noqa: E731
    token_s, batched_s, speedup = _speedup(make, wl.stream)
    floored = _floored_batch(seed)
    tokens_per_s = _throughput(make, floored, rounds=2 if quick else 3)
    ingest_table.add_row(
        "EdgeConnectivitySketch.consume", len(wl.stream), token_s, batched_s,
        speedup, tokens_per_s,
    )
    _record("edge_connect", len(wl.stream), token_s, batched_s, speedup,
            floored.lo.size, tokens_per_s)
    assert speedup >= GATE, f"batched ingest only {speedup:.1f}x faster"
    assert tokens_per_s >= THROUGHPUT_GATES["edge_connect"], (
        f"edge_connect batched ingest only {tokens_per_s:,.0f} tokens/s"
    )
    benchmark.pedantic(
        lambda: EdgeConnectivitySketch(
            n, 4, HashSource(seed + 1)
        ).consume_batch(floored),
        rounds=1 if quick else 3, iterations=1,
    )


def test_bench_ingest_simple_sparsify(benchmark, seed, quick, ingest_table):
    wl = make_workload("er-small", seed=seed)
    n = wl.graph.n
    make = lambda: SimpleSparsification(  # noqa: E731
        n, epsilon=0.5, source=HashSource(seed + 2), c_k=0.3
    )
    token_s, batched_s, speedup = _speedup(make, wl.stream)
    floored = _floored_batch(seed)
    tokens_per_s = _throughput(make, floored, rounds=2 if quick else 3)
    ingest_table.add_row(
        "SimpleSparsification.consume", len(wl.stream), token_s, batched_s,
        speedup, tokens_per_s,
    )
    _record("simple_sparsify", len(wl.stream), token_s, batched_s, speedup,
            floored.lo.size, tokens_per_s)
    assert speedup >= GATE, f"batched ingest only {speedup:.1f}x faster"
    assert tokens_per_s >= THROUGHPUT_GATES["simple_sparsify"], (
        f"simple_sparsify batched ingest only {tokens_per_s:,.0f} tokens/s"
    )
    benchmark.pedantic(
        lambda: SimpleSparsification(
            n, epsilon=0.5, source=HashSource(seed + 2), c_k=0.3
        ).consume_batch(floored),
        rounds=1 if quick else 3, iterations=1,
    )
